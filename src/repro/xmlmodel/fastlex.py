"""Regex-scanner tokenizer: the fast half of the ``REPRO_PARSER`` seam.

Two surfaces over the same scanning core:

* :func:`tokenize_xml_fast` — a drop-in replacement for
  :func:`repro.xmlmodel.lexer.tokenize_xml`, token-identical (including
  error messages and their line/column positions) but driven by compiled
  regular expressions instead of a per-character cursor loop.  Any tag
  construct the fast patterns do not recognise is handed to the reference
  scanner at the same position, so the hard cases (entities in attribute
  values, zero-whitespace attribute runs, every malformed-tag diagnostic)
  are *by construction* the reference's behavior, not a reimplementation.
* :func:`scan_events` — the fused hot path.  It yields bare
  ``(kind, payload, offset)`` tuples (no token objects, no attribute
  dicts, no line/column bookkeeping) for event-driven checking in
  :mod:`repro.core.stream`; positions are recomputed from the offset only
  when an error must be raised.

The seam itself is :func:`parser_backend` / :func:`active_tokenizer`,
reading ``REPRO_PARSER`` per call: ``reference`` selects the original
character-at-a-time lexer, anything else (including unset) selects the
fast scanner.  ``tests/test_parse_fusion.py`` pins the two token streams
against each other over the fuzz corpus.
"""

from __future__ import annotations

import os
import re
from typing import Callable, Iterator

from repro.errors import XmlSyntaxError
from repro.xmlmodel import lexer as _ref
from repro.xmlmodel.lexer import XmlToken, XmlTokenKind, tokenize_xml

__all__ = [
    "EV_START",
    "EV_END",
    "EV_TEXT",
    "PARSER_ENV",
    "active_tokenizer",
    "parser_backend",
    "scan_events",
    "tokenize_xml_fast",
]

#: Environment variable naming the tokenizer: ``reference`` or ``fast``.
PARSER_ENV = "REPRO_PARSER"

_NAME = r"[A-Za-z_:][A-Za-z0-9._:\-]*"
_S = r"[ \t\r\n]"
#: One quoted attribute value free of ``&`` and ``<`` — nothing to decode,
#: nothing to reject, so the raw slice *is* the value.
_VALUE = r"(?:\"[^\"<&]*\"|'[^'<&]*')"
#: A complete start/empty tag whose attributes are all easy values and
#: whitespace-separated.  Anything else falls back to the reference scanner.
_START_TAG = re.compile(rf"<({_NAME})((?:{_S}+{_NAME}{_S}*={_S}*{_VALUE})*){_S}*(/?)>")
_END_TAG = re.compile(rf"</({_NAME}){_S}*>")
_ATTR = re.compile(rf"({_NAME}){_S}*={_S}*({_VALUE})")

#: Event kinds yielded by :func:`scan_events`.
EV_START = 0
EV_END = 1
EV_TEXT = 2


def parser_backend() -> str:
    """The active tokenizer name: ``"reference"`` or ``"fast"`` (default)."""
    value = os.environ.get(PARSER_ENV, "").strip().lower()
    return "reference" if value == "reference" else "fast"


def active_tokenizer() -> Callable[[str], Iterator[XmlToken]]:
    """The token stream the parser should consume, per ``REPRO_PARSER``."""
    return tokenize_xml if parser_backend() == "reference" else tokenize_xml_fast


def _loc(source: str, offset: int) -> tuple[int, int]:
    """(line, column) of *offset*, computed from scratch (error paths only)."""
    line = source.count("\n", 0, offset) + 1
    newline = source.rfind("\n", 0, offset)
    return line, offset - newline


def _attributes(blob: str) -> tuple[tuple[str, str], ...]:
    """Decode the attribute blob of a fast-matched start tag."""
    return tuple(
        (match.group(1), match.group(2)[1:-1]) for match in _ATTR.finditer(blob)
    )


def tokenize_xml_fast(source: str) -> Iterator[XmlToken]:
    """Yield exactly the tokens of :func:`tokenize_xml`, regex-driven."""
    pos = 0
    length = len(source)
    # Incremental line/column tracker: every token needs a position, so
    # amortise the newline counting instead of rescanning the prefix.
    anchor = 0
    line = 1
    line_start = 0

    def advance(offset: int) -> tuple[int, int]:
        nonlocal anchor, line, line_start
        if offset > anchor:
            added = source.count("\n", anchor, offset)
            if added:
                line += added
                line_start = source.rfind("\n", anchor, offset) + 1
            anchor = offset
        return line, offset - line_start + 1

    def delegate() -> XmlToken:
        """Hand the tag at *pos* to the reference scanner, then resync."""
        nonlocal pos, anchor, line, line_start
        at_line, at_column = advance(pos)
        cursor = _ref._Cursor(source)
        cursor.position = pos
        cursor.line = at_line
        cursor.column = at_column
        token = _ref._scan_tag(cursor)  # raises the reference diagnostics
        pos = anchor = cursor.position
        line = cursor.line
        line_start = cursor.position - (cursor.column - 1)
        return token

    text_pieces: list[str] = []
    text_line, text_column = 1, 1

    while pos < length:
        char = source[pos]
        if char == "<":
            if source.startswith("<!--", pos):
                if text_pieces:
                    yield XmlToken(
                        XmlTokenKind.TEXT,
                        text="".join(text_pieces),
                        line=text_line,
                        column=text_column,
                    )
                    text_pieces = []
                end = source.find("-->", pos)
                if end < 0:
                    at_line, at_column = advance(pos)
                    raise XmlSyntaxError("unterminated comment", at_line, at_column)
                pos = end + 3
                continue
            if source.startswith("<![CDATA[", pos):
                if not text_pieces:
                    text_line, text_column = advance(pos)
                end = source.find("]]>", pos + 9)
                if end < 0:
                    at_line, at_column = advance(pos)
                    raise XmlSyntaxError(
                        "unterminated CDATA section", at_line, at_column
                    )
                text_pieces.append(source[pos + 9 : end])
                pos = end + 3
                continue
            if source.startswith("<?", pos):
                if text_pieces:
                    yield XmlToken(
                        XmlTokenKind.TEXT,
                        text="".join(text_pieces),
                        line=text_line,
                        column=text_column,
                    )
                    text_pieces = []
                end = source.find("?>", pos)
                if end < 0:
                    at_line, at_column = advance(pos)
                    raise XmlSyntaxError(
                        "unterminated processing instruction", at_line, at_column
                    )
                pos = end + 2
                continue
            if source.startswith("<!DOCTYPE", pos):
                if text_pieces:
                    yield XmlToken(
                        XmlTokenKind.TEXT,
                        text="".join(text_pieces),
                        line=text_line,
                        column=text_column,
                    )
                    text_pieces = []
                depth = 0
                scan = pos
                while scan < length:
                    item = source[scan]
                    scan += 1
                    if item == "[":
                        depth += 1
                    elif item == "]":
                        depth -= 1
                    elif item == ">" and depth <= 0:
                        break
                else:
                    at_line, at_column = advance(length)
                    raise XmlSyntaxError("unterminated DOCTYPE", at_line, at_column)
                pos = scan
                continue
            if text_pieces:
                yield XmlToken(
                    XmlTokenKind.TEXT,
                    text="".join(text_pieces),
                    line=text_line,
                    column=text_column,
                )
                text_pieces = []
            match = _START_TAG.match(source, pos)
            if match is not None:
                at_line, at_column = advance(pos)
                kind = (
                    XmlTokenKind.EMPTY_TAG if match.group(3) else XmlTokenKind.START_TAG
                )
                yield XmlToken(
                    kind,
                    name=match.group(1),
                    attributes=_attributes(match.group(2)),
                    line=at_line,
                    column=at_column,
                )
                pos = match.end()
                continue
            match = _END_TAG.match(source, pos)
            if match is not None:
                at_line, at_column = advance(pos)
                yield XmlToken(
                    XmlTokenKind.END_TAG,
                    name=match.group(1),
                    line=at_line,
                    column=at_column,
                )
                pos = match.end()
                continue
            yield delegate()
            continue
        if char == "&":
            if not text_pieces:
                text_line, text_column = advance(pos)
            end = source.find(";", pos + 1)
            if end < 0 or end - (pos + 1) > 10:
                at_line, at_column = advance(pos)
                raise XmlSyntaxError(
                    "unterminated entity reference", at_line, at_column
                )
            body = source[pos + 1 : end]
            if body.startswith("#x") or body.startswith("#X"):
                text_pieces.append(chr(int(body[2:], 16)))
            elif body.startswith("#"):
                text_pieces.append(chr(int(body[1:])))
            elif body in _ref._ENTITIES:
                text_pieces.append(_ref._ENTITIES[body])
            else:
                at_line, at_column = advance(pos)
                raise XmlSyntaxError(f"unknown entity &{body};", at_line, at_column)
            pos = end + 1
            continue
        # A maximal plain-text run: jump straight to the next markup start.
        if not text_pieces:
            text_line, text_column = advance(pos)
        lt = source.find("<", pos)
        amp = source.find("&", pos)
        stop = length
        if lt >= 0:
            stop = lt
        if 0 <= amp < stop:
            stop = amp
        text_pieces.append(source[pos:stop])
        pos = stop
    if text_pieces:
        yield XmlToken(
            XmlTokenKind.TEXT,
            text="".join(text_pieces),
            line=text_line,
            column=text_column,
        )
    at_line, at_column = advance(length)
    yield XmlToken(XmlTokenKind.EOF, line=at_line, column=at_column)


def scan_events(source: str) -> Iterator[tuple[int, str, int]]:
    """Yield ``(kind, payload, offset)`` events without building tokens.

    ``EV_START``/``EV_END`` carry the tag name (an empty tag yields both
    at the same offset); ``EV_TEXT`` carries the decoded character data of
    a maximal run.  Offsets point at the first source character of the
    construct so error positions can be recovered lazily via :func:`_loc`.
    Syntax diagnostics are identical to the reference lexer's.
    """
    pos = 0
    length = len(source)
    text_pieces: list[str] = []
    text_offset = 0

    def delegate() -> XmlToken:
        nonlocal pos
        at_line, at_column = _loc(source, pos)
        cursor = _ref._Cursor(source)
        cursor.position = pos
        cursor.line = at_line
        cursor.column = at_column
        token = _ref._scan_tag(cursor)
        pos = cursor.position
        return token

    while pos < length:
        char = source[pos]
        if char == "<":
            if source.startswith("<!--", pos):
                if text_pieces:
                    yield EV_TEXT, "".join(text_pieces), text_offset
                    text_pieces = []
                end = source.find("-->", pos)
                if end < 0:
                    raise XmlSyntaxError("unterminated comment", *_loc(source, pos))
                pos = end + 3
                continue
            if source.startswith("<![CDATA[", pos):
                if not text_pieces:
                    text_offset = pos
                end = source.find("]]>", pos + 9)
                if end < 0:
                    raise XmlSyntaxError(
                        "unterminated CDATA section", *_loc(source, pos)
                    )
                text_pieces.append(source[pos + 9 : end])
                pos = end + 3
                continue
            if source.startswith("<?", pos):
                if text_pieces:
                    yield EV_TEXT, "".join(text_pieces), text_offset
                    text_pieces = []
                end = source.find("?>", pos)
                if end < 0:
                    raise XmlSyntaxError(
                        "unterminated processing instruction", *_loc(source, pos)
                    )
                pos = end + 2
                continue
            if source.startswith("<!DOCTYPE", pos):
                if text_pieces:
                    yield EV_TEXT, "".join(text_pieces), text_offset
                    text_pieces = []
                depth = 0
                scan = pos
                while scan < length:
                    item = source[scan]
                    scan += 1
                    if item == "[":
                        depth += 1
                    elif item == "]":
                        depth -= 1
                    elif item == ">" and depth <= 0:
                        break
                else:
                    raise XmlSyntaxError(
                        "unterminated DOCTYPE", *_loc(source, length)
                    )
                pos = scan
                continue
            if text_pieces:
                yield EV_TEXT, "".join(text_pieces), text_offset
                text_pieces = []
            start = pos
            match = _START_TAG.match(source, pos)
            if match is not None:
                yield EV_START, match.group(1), start
                if match.group(3):
                    yield EV_END, match.group(1), start
                pos = match.end()
                continue
            match = _END_TAG.match(source, pos)
            if match is not None:
                yield EV_END, match.group(1), start
                pos = match.end()
                continue
            token = delegate()
            if token.kind is XmlTokenKind.END_TAG:
                yield EV_END, token.name, start
            else:
                yield EV_START, token.name, start
                if token.kind is XmlTokenKind.EMPTY_TAG:
                    yield EV_END, token.name, start
            continue
        if char == "&":
            if not text_pieces:
                text_offset = pos
            end = source.find(";", pos + 1)
            if end < 0 or end - (pos + 1) > 10:
                raise XmlSyntaxError(
                    "unterminated entity reference", *_loc(source, pos)
                )
            body = source[pos + 1 : end]
            if body.startswith("#x") or body.startswith("#X"):
                text_pieces.append(chr(int(body[2:], 16)))
            elif body.startswith("#"):
                text_pieces.append(chr(int(body[1:])))
            elif body in _ref._ENTITIES:
                text_pieces.append(_ref._ENTITIES[body])
            else:
                raise XmlSyntaxError(f"unknown entity &{body};", *_loc(source, pos))
            pos = end + 1
            continue
        if not text_pieces:
            text_offset = pos
        lt = source.find("<", pos)
        amp = source.find("&", pos)
        stop = length
        if lt >= 0:
            stop = lt
        if 0 <= amp < stop:
            stop = amp
        text_pieces.append(source[pos:stop])
        pos = stop
    if text_pieces:
        yield EV_TEXT, "".join(text_pieces), text_offset
