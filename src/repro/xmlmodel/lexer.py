"""Tokenizer for XML document text.

Supports the subset of XML 1.0 a document-centric editor produces: start
tags with attributes, end tags, self-closing tags, character data with the
five predefined entities plus numeric character references, CDATA sections,
comments and processing instructions (both skipped).  DOCTYPE declarations
are skipped too — DTDs are parsed separately by :mod:`repro.dtd`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum, auto
from typing import Iterator

from repro.errors import XmlSyntaxError

__all__ = ["XmlTokenKind", "XmlToken", "tokenize_xml"]

_NAME_START = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_:")
_NAME_CHARS = _NAME_START | set("0123456789.-")
_WHITESPACE = set(" \t\r\n")

_ENTITIES = {"lt": "<", "gt": ">", "amp": "&", "apos": "'", "quot": '"'}


class XmlTokenKind(Enum):
    START_TAG = auto()
    END_TAG = auto()
    EMPTY_TAG = auto()  # self-closing <a/>
    TEXT = auto()
    EOF = auto()


@dataclass(frozen=True)
class XmlToken:
    kind: XmlTokenKind
    name: str = ""
    text: str = ""
    attributes: tuple[tuple[str, str], ...] = field(default=())
    line: int = 1
    column: int = 1


class _Cursor:
    """Character cursor that tracks line/column for error messages."""

    def __init__(self, source: str) -> None:
        self.source = source
        self.position = 0
        self.line = 1
        self.column = 1

    def at_end(self) -> bool:
        return self.position >= len(self.source)

    def peek(self) -> str:
        return self.source[self.position] if not self.at_end() else ""

    def startswith(self, prefix: str) -> bool:
        return self.source.startswith(prefix, self.position)

    def take(self, count: int = 1) -> str:
        chunk = self.source[self.position : self.position + count]
        for char in chunk:
            if char == "\n":
                self.line += 1
                self.column = 1
            else:
                self.column += 1
        self.position += count
        return chunk

    def skip_until(self, marker: str, what: str) -> None:
        end = self.source.find(marker, self.position)
        if end < 0:
            raise XmlSyntaxError(f"unterminated {what}", self.line, self.column)
        self.take(end - self.position + len(marker))

    def error(self, message: str) -> XmlSyntaxError:
        return XmlSyntaxError(message, self.line, self.column)


def _scan_name(cursor: _Cursor) -> str:
    if cursor.peek() not in _NAME_START:
        raise cursor.error(f"expected a name, found {cursor.peek()!r}")
    chars = [cursor.take()]
    while not cursor.at_end() and cursor.peek() in _NAME_CHARS:
        chars.append(cursor.take())
    return "".join(chars)


def _skip_whitespace(cursor: _Cursor) -> None:
    while not cursor.at_end() and cursor.peek() in _WHITESPACE:
        cursor.take()


def _decode_reference(cursor: _Cursor) -> str:
    """Decode an entity or character reference starting at ``&``."""
    line, column = cursor.line, cursor.column
    cursor.take()  # '&'
    end = cursor.source.find(";", cursor.position)
    if end < 0 or end - cursor.position > 10:
        raise XmlSyntaxError("unterminated entity reference", line, column)
    body = cursor.source[cursor.position : end]
    cursor.take(end - cursor.position + 1)
    if body.startswith("#x") or body.startswith("#X"):
        return chr(int(body[2:], 16))
    if body.startswith("#"):
        return chr(int(body[1:]))
    if body in _ENTITIES:
        return _ENTITIES[body]
    raise XmlSyntaxError(f"unknown entity &{body};", line, column)


def _scan_attributes(cursor: _Cursor) -> tuple[tuple[str, str], ...]:
    attributes: list[tuple[str, str]] = []
    while True:
        _skip_whitespace(cursor)
        if cursor.at_end() or cursor.peek() in (">", "/"):
            return tuple(attributes)
        name = _scan_name(cursor)
        _skip_whitespace(cursor)
        if cursor.peek() != "=":
            raise cursor.error(f"expected '=' after attribute {name!r}")
        cursor.take()
        _skip_whitespace(cursor)
        quote = cursor.peek()
        if quote not in ("'", '"'):
            raise cursor.error("attribute value must be quoted")
        cursor.take()
        value_chars: list[str] = []
        while not cursor.at_end() and cursor.peek() != quote:
            if cursor.peek() == "&":
                value_chars.append(_decode_reference(cursor))
            elif cursor.peek() == "<":
                raise cursor.error("'<' is not allowed in attribute values")
            else:
                value_chars.append(cursor.take())
        if cursor.at_end():
            raise cursor.error("unterminated attribute value")
        cursor.take()  # closing quote
        attributes.append((name, "".join(value_chars)))


def _scan_tag(cursor: _Cursor) -> XmlToken:
    line, column = cursor.line, cursor.column
    cursor.take()  # '<'
    if cursor.peek() == "/":
        cursor.take()
        name = _scan_name(cursor)
        _skip_whitespace(cursor)
        if cursor.peek() != ">":
            raise cursor.error(f"malformed end tag </{name}")
        cursor.take()
        return XmlToken(XmlTokenKind.END_TAG, name=name, line=line, column=column)
    name = _scan_name(cursor)
    attributes = _scan_attributes(cursor)
    if cursor.startswith("/>"):
        cursor.take(2)
        return XmlToken(
            XmlTokenKind.EMPTY_TAG,
            name=name,
            attributes=attributes,
            line=line,
            column=column,
        )
    if cursor.peek() == ">":
        cursor.take()
        return XmlToken(
            XmlTokenKind.START_TAG,
            name=name,
            attributes=attributes,
            line=line,
            column=column,
        )
    raise cursor.error(f"malformed start tag <{name}")


def tokenize_xml(source: str) -> Iterator[XmlToken]:
    """Yield the markup/text tokens of *source*, ending with ``EOF``.

    Character data between tags is emitted as a single ``TEXT`` token per
    maximal run (entity references decoded, CDATA inlined); comments,
    processing instructions, the XML declaration and DOCTYPE are skipped.
    """
    cursor = _Cursor(source)
    text_chars: list[str] = []
    text_line, text_column = 1, 1

    def flush_text() -> Iterator[XmlToken]:
        nonlocal text_chars
        if text_chars:
            yield XmlToken(
                XmlTokenKind.TEXT,
                text="".join(text_chars),
                line=text_line,
                column=text_column,
            )
            text_chars = []

    while not cursor.at_end():
        if cursor.startswith("<!--"):
            yield from flush_text()
            cursor.skip_until("-->", "comment")
            continue
        if cursor.startswith("<![CDATA["):
            if not text_chars:
                text_line, text_column = cursor.line, cursor.column
            start = cursor.position + len("<![CDATA[")
            end = cursor.source.find("]]>", start)
            if end < 0:
                raise cursor.error("unterminated CDATA section")
            text_chars.append(cursor.source[start:end])
            cursor.take(end - cursor.position + 3)
            continue
        if cursor.startswith("<?"):
            yield from flush_text()
            cursor.skip_until("?>", "processing instruction")
            continue
        if cursor.startswith("<!DOCTYPE"):
            yield from flush_text()
            # Skip to the matching '>' allowing one bracketed internal subset.
            depth = 0
            while not cursor.at_end():
                char = cursor.take()
                if char == "[":
                    depth += 1
                elif char == "]":
                    depth -= 1
                elif char == ">" and depth <= 0:
                    break
            else:
                raise cursor.error("unterminated DOCTYPE")
            continue
        if cursor.peek() == "<":
            yield from flush_text()
            yield _scan_tag(cursor)
            continue
        if cursor.peek() == "&":
            if not text_chars:
                text_line, text_column = cursor.line, cursor.column
            text_chars.append(_decode_reference(cursor))
            continue
        if not text_chars:
            text_line, text_column = cursor.line, cursor.column
        text_chars.append(cursor.take())
    yield from flush_text()
    yield XmlToken(XmlTokenKind.EOF, line=cursor.line, column=cursor.column)
