"""A lightweight mutable DOM for document-centric XML.

The paper's editorial model works on a document tree (its Figure 2 DOM
trees) under three families of operations:

* **markup insertion** — wrap a *contiguous* range of a node's children in a
  new element (:meth:`XmlElement.wrap_children`); this is exactly the
  ``Ext(w, T)`` extension step of Definition 2,
* **markup deletion** — splice an element's children into its parent
  (:meth:`XmlElement.unwrap_child`), the inverse operation, under which
  potential validity is closed (Theorem 2),
* **character-data operations** — insert/update/delete text nodes
  (Section 3.2's character data updates and insertions).

Design notes
------------
Attributes are carried through parsing/serialization for fidelity but play
no role in any algorithm (paper footnote 3).  Adjacent text children are
*not* auto-merged on construction — the ``delta`` operators collapse runs of
character data exactly as the paper's ``delta_T`` does, so keeping the raw
segmentation lets tests exercise that collapse.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.errors import XmlStructureError

__all__ = ["XmlText", "XmlElement", "XmlNode", "XmlDocument"]


class XmlText:
    """A character-data node."""

    __slots__ = ("text", "parent")

    def __init__(self, text: str) -> None:
        self.text = text
        self.parent: XmlElement | None = None

    def copy(self) -> "XmlText":
        return XmlText(self.text)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        preview = self.text if len(self.text) <= 24 else self.text[:21] + "..."
        return f"XmlText({preview!r})"


class XmlElement:
    """An element node with ordered children and optional attributes."""

    __slots__ = ("name", "children", "attributes", "parent")

    def __init__(
        self,
        name: str,
        children: Sequence["XmlNode"] | None = None,
        attributes: dict[str, str] | None = None,
    ) -> None:
        self.name = name
        self.children: list[XmlNode] = []
        self.attributes: dict[str, str] = dict(attributes or {})
        self.parent: XmlElement | None = None
        for child in children or ():
            self.append(child)

    # -- construction / mutation ------------------------------------------

    def append(self, child: "XmlNode") -> "XmlNode":
        """Append *child* (detaching it from any previous parent)."""
        return self.insert(len(self.children), child)

    def insert(self, index: int, child: "XmlNode") -> "XmlNode":
        """Insert *child* at *index* (detaching it from any previous parent)."""
        if child.parent is not None:
            child.parent.remove(child)
        if not 0 <= index <= len(self.children):
            raise XmlStructureError(
                f"insert index {index} out of range for {len(self.children)} children"
            )
        self.children.insert(index, child)
        child.parent = self
        return child

    def remove(self, child: "XmlNode") -> "XmlNode":
        """Remove *child* from this element (identity match)."""
        for index, existing in enumerate(self.children):
            if existing is child:
                del self.children[index]
                child.parent = None
                return child
        raise XmlStructureError("node is not a child of this element")

    def wrap_children(self, start: int, end: int, name: str) -> "XmlElement":
        """Wrap children ``[start:end)`` in a new ``<name>`` element.

        This is the markup-insertion primitive of Definition 2: the new
        element replaces a *contiguous* (possibly empty) range of children
        and adopts them.  Returns the new element.
        """
        if not (0 <= start <= end <= len(self.children)):
            raise XmlStructureError(
                f"wrap range [{start}, {end}) invalid for {len(self.children)} children"
            )
        wrapped = self.children[start:end]
        wrapper = XmlElement(name)
        for node in wrapped:
            node.parent = wrapper
        wrapper.children = list(wrapped)
        self.children[start:end] = [wrapper]
        wrapper.parent = self
        return wrapper

    def unwrap_child(self, child: "XmlElement") -> list["XmlNode"]:
        """Markup deletion: splice *child*'s children into its place.

        Returns the spliced nodes.  The inverse of :meth:`wrap_children`;
        Theorem 2 says potential validity is closed under this operation.
        """
        index = self.index_of(child)
        grandchildren = list(child.children)
        for node in grandchildren:
            node.parent = self
        child.children = []
        child.parent = None
        self.children[index : index + 1] = grandchildren
        return grandchildren

    def index_of(self, child: "XmlNode") -> int:
        """Return the position of *child* among this element's children."""
        for index, existing in enumerate(self.children):
            if existing is child:
                return index
        raise XmlStructureError("node is not a child of this element")

    # -- queries -------------------------------------------------------------

    def element_children(self) -> list["XmlElement"]:
        """Child nodes that are elements, in order."""
        return [child for child in self.children if isinstance(child, XmlElement)]

    def iter_elements(self) -> Iterator["XmlElement"]:
        """Yield this element and all descendant elements in document order."""
        yield self
        for child in self.children:
            if isinstance(child, XmlElement):
                yield from child.iter_elements()

    def content(self) -> str:
        """Concatenated character data in document order (paper ``content(w)``)."""
        parts: list[str] = []
        for child in self.children:
            if isinstance(child, XmlText):
                parts.append(child.text)
            else:
                parts.append(child.content())
        return "".join(parts)

    def depth(self) -> int:
        """Depth of the subtree rooted here (a leaf element has depth 1)."""
        best = 0
        for child in self.children:
            if isinstance(child, XmlElement):
                best = max(best, child.depth())
        return best + 1

    def node_count(self) -> int:
        """Number of nodes (elements + text) in this subtree, inclusive."""
        total = 1
        for child in self.children:
            if isinstance(child, XmlElement):
                total += child.node_count()
            else:
                total += 1
        return total

    def copy(self) -> "XmlElement":
        """Deep copy of this subtree (detached)."""
        clone = XmlElement(self.name, attributes=dict(self.attributes))
        for child in self.children:
            clone.append(child.copy())
        return clone

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"XmlElement({self.name!r}, children={len(self.children)})"


XmlNode = XmlText | XmlElement


class XmlDocument:
    """A well-formed XML document: exactly one root element."""

    __slots__ = ("root",)

    def __init__(self, root: XmlElement) -> None:
        if root.parent is not None:
            raise XmlStructureError("document root must be detached")
        self.root = root

    def iter_elements(self) -> Iterator[XmlElement]:
        """All elements in document order."""
        return self.root.iter_elements()

    def element_names(self) -> frozenset[str]:
        """The paper's ``elements(w)``: the set of element types used."""
        return frozenset(element.name for element in self.iter_elements())

    def content(self) -> str:
        """The paper's ``content(w)``."""
        return self.root.content()

    def depth(self) -> int:
        return self.root.depth()

    def node_count(self) -> int:
        return self.root.node_count()

    def copy(self) -> "XmlDocument":
        return XmlDocument(self.root.copy())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"XmlDocument(root={self.root.name!r}, nodes={self.node_count()})"
