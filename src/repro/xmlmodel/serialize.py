"""Serialize the DOM back to XML text.

The output is canonical enough for round-tripping in tests: attributes in
insertion order, ``<a></a>`` (not ``<a/>``) for empty elements by default —
matching the paper's examples, which write ``<e></e>`` — and the five
predefined entities escaped in text and attribute values.
"""

from __future__ import annotations

from repro.xmlmodel.tree import XmlDocument, XmlElement, XmlNode, XmlText

__all__ = ["to_xml", "escape_text"]

_TEXT_ESCAPES = {"&": "&amp;", "<": "&lt;", ">": "&gt;"}
_ATTR_ESCAPES = {"&": "&amp;", "<": "&lt;", '"': "&quot;"}


def escape_text(text: str) -> str:
    """Escape character data for inclusion in XML text content."""
    return "".join(_TEXT_ESCAPES.get(char, char) for char in text)


def _escape_attribute(value: str) -> str:
    return "".join(_ATTR_ESCAPES.get(char, char) for char in value)


def to_xml(node: XmlNode | XmlDocument, self_closing: bool = False) -> str:
    """Render *node* (or a whole document) as XML text.

    Parameters
    ----------
    node:
        The document, element or text node to render.
    self_closing:
        When ``True``, childless elements render as ``<a/>`` instead of
        ``<a></a>``.
    """
    if isinstance(node, XmlDocument):
        return to_xml(node.root, self_closing=self_closing)
    parts: list[str] = []
    _render(node, parts, self_closing)
    return "".join(parts)


def _render(node: XmlNode, parts: list[str], self_closing: bool) -> None:
    if isinstance(node, XmlText):
        parts.append(escape_text(node.text))
        return
    assert isinstance(node, XmlElement)
    parts.append(f"<{node.name}")
    for name, value in node.attributes.items():
        parts.append(f' {name}="{_escape_attribute(value)}"')
    if not node.children and self_closing:
        parts.append("/>")
        return
    parts.append(">")
    for child in node.children:
        _render(child, parts, self_closing)
    parts.append(f"</{node.name}>")
