"""The paper's ``delta_T`` (Section 3.1) and ``Delta_T`` (Section 4) operators.

``delta_T`` converts an XML string into the terminal string consumed by the
grammars ``G_{T,r}``/``G'_{T,r}``: markup structure is preserved while every
maximal run of character data collapses to a single ``sigma`` terminal.

``Delta_T`` restricts a node to its children — descendants below the
children are discarded — producing the token sequence consumed by the
Element Content Potential Validity (ECPV) recognizers: a sequence over
element names and ``sigma``.

Symbol conventions
------------------
* ``sigma`` is represented by :data:`SIGMA`, which equals the
  :data:`repro.dtd.model.PCDATA` sentinel (``"#PCDATA"``).  Using one
  sentinel for "character data here" lets reachability lookups
  (``can x embed character data?``) consume ``Delta`` tokens directly.
  ``#`` is not an XML name character, so no element name can collide.
* start/end tag terminals are the strings ``"<x>"`` and ``"</x>"`` — exactly
  the paper's ``Sigma`` alphabet.
"""

from __future__ import annotations

from repro.dtd.model import PCDATA
from repro.xmlmodel.tree import XmlDocument, XmlElement, XmlNode, XmlText

__all__ = [
    "SIGMA",
    "start_tag",
    "end_tag",
    "delta_symbols",
    "delta_tokens",
    "content_symbols",
]

#: The ``sigma`` terminal: one maximal run of character data.
SIGMA: str = PCDATA


def start_tag(name: str) -> str:
    """The start-tag terminal ``<name>`` of the paper's alphabet ``Sigma``."""
    return f"<{name}>"


def end_tag(name: str) -> str:
    """The end-tag terminal ``</name>``."""
    return f"</{name}>"


def _significant(text: str, ignore_whitespace: bool) -> bool:
    if not text:
        return False
    if ignore_whitespace and not text.strip():
        return False
    return True


def delta_symbols(
    node: XmlNode | XmlDocument, ignore_whitespace: bool = False
) -> list[str]:
    """Apply ``delta_T``: the full token string of *node*'s subtree.

    Consecutive character-data children collapse to a single :data:`SIGMA`;
    empty text nodes vanish (the paper maps empty content to the empty
    string).

    >>> from repro.xmlmodel.parser import parse_xml
    >>> doc = parse_xml("<a><b>A quick brown</b><c> fox</c> dog</a>")
    >>> delta_symbols(doc)
    ['<a>', '<b>', '#PCDATA', '</b>', '<c>', '#PCDATA', '</c>', '#PCDATA', '</a>']
    """
    if isinstance(node, XmlDocument):
        node = node.root
    output: list[str] = []
    _delta(node, output, ignore_whitespace)
    return output


def _delta(node: XmlNode, output: list[str], ignore_whitespace: bool) -> None:
    if isinstance(node, XmlText):
        if _significant(node.text, ignore_whitespace):
            if not output or output[-1] != SIGMA:
                output.append(SIGMA)
        return
    assert isinstance(node, XmlElement)
    output.append(start_tag(node.name))
    for child in node.children:
        _delta(child, output, ignore_whitespace)
    output.append(end_tag(node.name))


def delta_tokens(
    node: XmlNode | XmlDocument, ignore_whitespace: bool = False
) -> tuple[str, ...]:
    """Like :func:`delta_symbols` but returns an immutable tuple."""
    return tuple(delta_symbols(node, ignore_whitespace=ignore_whitespace))


def content_symbols(
    element: XmlElement, ignore_whitespace: bool = False
) -> list[str]:
    """Apply ``Delta_T`` to *element* and strip the enclosing root tags.

    Returns the child-symbol sequence consumed by the ECPV recognizers:
    each element child contributes its name, each maximal run of
    character-data children contributes one :data:`SIGMA`.

    >>> from repro.xmlmodel.parser import parse_xml
    >>> doc = parse_xml(
    ...     "<a><b>A quick brown</b><e></e><c> fox jumps</c> dog</a>")
    >>> content_symbols(doc.root)
    ['b', 'e', 'c', '#PCDATA']
    """
    symbols: list[str] = []
    for child in element.children:
        if isinstance(child, XmlText):
            if _significant(child.text, ignore_whitespace):
                if not symbols or symbols[-1] != SIGMA:
                    symbols.append(SIGMA)
        else:
            symbols.append(child.name)
    return symbols
