"""Well-formedness parser: XML text to :class:`~repro.xmlmodel.tree.XmlDocument`.

Checks exactly the well-formedness constraints the paper's "XML string"
notion requires: properly nested matching tags and a single root element.
Character data outside the root is rejected unless it is all whitespace.
"""

from __future__ import annotations

from repro.errors import XmlSyntaxError
from repro.xmlmodel.fastlex import active_tokenizer
from repro.xmlmodel.lexer import XmlTokenKind
from repro.xmlmodel.tree import XmlDocument, XmlElement, XmlText

__all__ = ["parse_xml", "parse_fragment"]


def parse_xml(source: str) -> XmlDocument:
    """Parse *source* into a document, enforcing well-formedness.

    >>> doc = parse_xml("<a><b>hi</b> there</a>")
    >>> doc.root.name
    'a'
    >>> doc.content()
    'hi there'
    """
    root = _parse(source, fragment=False)
    return XmlDocument(root)


def parse_fragment(source: str) -> XmlElement:
    """Parse a single-rooted fragment and return its root element.

    Identical to :func:`parse_xml` but returns the detached element, which
    is convenient when building larger trees in tests and workloads.
    """
    return _parse(source, fragment=True)


def _parse(source: str, fragment: bool) -> XmlElement:
    root: XmlElement | None = None
    stack: list[XmlElement] = []
    for token in active_tokenizer()(source):
        if token.kind is XmlTokenKind.TEXT:
            if not stack:
                if token.text.strip():
                    raise XmlSyntaxError(
                        "character data outside the root element",
                        token.line,
                        token.column,
                    )
                continue
            stack[-1].append(XmlText(token.text))
        elif token.kind in (XmlTokenKind.START_TAG, XmlTokenKind.EMPTY_TAG):
            element = XmlElement(token.name, attributes=dict(token.attributes))
            if stack:
                stack[-1].append(element)
            elif root is None:
                root = element
            else:
                raise XmlSyntaxError(
                    f"multiple root elements: second root <{token.name}>",
                    token.line,
                    token.column,
                )
            if token.kind is XmlTokenKind.START_TAG:
                stack.append(element)
        elif token.kind is XmlTokenKind.END_TAG:
            if not stack:
                raise XmlSyntaxError(
                    f"unmatched end tag </{token.name}>", token.line, token.column
                )
            open_element = stack.pop()
            if open_element.name != token.name:
                raise XmlSyntaxError(
                    f"end tag </{token.name}> does not match open <{open_element.name}>",
                    token.line,
                    token.column,
                )
        else:  # EOF
            if stack:
                raise XmlSyntaxError(
                    f"unclosed element <{stack[-1].name}>", token.line, token.column
                )
    if root is None:
        raise XmlSyntaxError("document has no root element")
    return root
