"""Library-wide configuration defaults.

The single knob the paper exposes is the *document depth bound* ``D`` of the
ECRecognizer (Section 4.3.1): for PV-strong recursive DTDs the recognizer
answers "potentially valid within valid-documents of depth at most D".  The
paper motivates a small default by citing the XML web study (its ref [12]):
"most XML documents' depths are of one digit magnitude".  We default to a
comfortably larger bound so that non-adversarial documents are never
misjudged, while still guaranteeing termination.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Default depth bound for recognizers (paper Section 4.3.1).  Large enough
#: for realistic document-centric documents (the paper cites one-digit depths
#: in the wild) yet finite so PV-strong recursive DTDs terminate.
DEFAULT_DEPTH_BOUND: int = 64

#: Hard cap on the naive extension-search baseline (number of candidate tag
#: insertions explored).  The naive baseline exists only as ground truth for
#: small property-test instances.
NAIVE_SEARCH_NODE_LIMIT: int = 200_000

#: Maximum number of GSS nodes the exact machine may allocate per token
#: before concluding the configuration space is pathological.  This is a
#: safety valve; no test or benchmark workload approaches it.
MACHINE_NODE_LIMIT: int = 1_000_000


@dataclass(frozen=True)
class CheckerConfig:
    """Configuration for potential-validity checkers.

    Parameters
    ----------
    depth_bound:
        Maximum nesting depth of *inserted* (missing) elements the checker
        will hypothesize, mirroring the ``depth`` parameter of the paper's
        ECRecognizer.  ``None`` means "derive a sufficient bound from the
        DTD": safe for non-recursive and PV-weak recursive DTDs, where a
        bound of ``|T| + 1`` per nesting chain suffices because no
        missing-element chain can repeat an element.
    strict_depth:
        When ``True``, a "no" verdict that may have been caused by the depth
        bound raises :class:`repro.errors.DepthBoundExceeded` instead of
        being reported, so callers never confuse "not PV" with "not PV
        within D".
    require_usable:
        When ``True`` (the paper's standing assumption) constructing a
        checker for a DTD with unusable elements raises
        :class:`repro.errors.UnusableElementError`.  When ``False`` the
        exact checkers handle unusable elements via productivity guards.
    """

    depth_bound: int | None = None
    strict_depth: bool = False
    require_usable: bool = False

    def resolved_depth(self, dtd_element_count: int, is_pv_strong: bool) -> int:
        """Return the effective depth bound for a DTD with the given traits.

        For DTDs that are not PV-strong recursive, a missing-element chain
        never needs to repeat an element type (repeating would make the DTD
        PV-strong), so ``element count + 1`` levels always suffice and the
        bound is *exact*.  For PV-strong recursive DTDs there is no finite
        exact bound in general (paper Example 5/6), so we fall back to
        :data:`DEFAULT_DEPTH_BOUND`.
        """
        if self.depth_bound is not None:
            return self.depth_bound
        if not is_pv_strong:
            return dtd_element_count + 1
        return DEFAULT_DEPTH_BOUND


#: Shared immutable default configuration.
DEFAULT_CONFIG = CheckerConfig()
