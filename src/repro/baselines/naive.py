"""Naive potential-validity: bounded search over ``Ext(w, T)``.

Definitions 2-3 taken literally: a document is potentially valid iff *some*
finite sequence of tag-pair insertions (each wrapping a contiguous child
range of some node) produces a valid document.  This module enumerates those
extensions breadth-first — insertion-count order, so the first hit is a
minimal extension — with deduplication on the serialized form.

The search space is infinite (insertions can nest forever), so the search
is bounded by a maximum insertion count and a node budget; the result is
three-valued:

* ``True``  — a valid extension was found (definitely potentially valid),
* ``False`` — the bounded space was exhausted: **no extension with at most
  ``max_insertions`` insertions exists** (a definitive answer to the
  bounded question; the unbounded answer may still be "yes" when more
  insertions would be needed),
* ``None``  — the node budget interrupted the search (inconclusive).

Property tests use ``True`` as a soundness oracle for the fast checkers;
``False`` is cross-checked against the constructive completion's insertion
count, which tells whether the bound sufficed.
"""

from __future__ import annotations

from collections import deque

from repro.config import NAIVE_SEARCH_NODE_LIMIT
from repro.dtd.model import DTD
from repro.validity.validator import DTDValidator
from repro.xmlmodel.serialize import to_xml
from repro.xmlmodel.tree import XmlDocument, XmlElement

__all__ = ["naive_potential_validity"]


def naive_potential_validity(
    dtd: DTD,
    document: XmlDocument,
    max_insertions: int = 6,
    node_limit: int = NAIVE_SEARCH_NODE_LIMIT,
) -> bool | None:
    """Decide potential validity by bounded breadth-first extension search."""
    validator = DTDValidator(dtd)
    root = document.root
    if root.name != dtd.root:
        return False
    if any(element.name not in dtd for element in root.iter_elements()):
        return False

    names = dtd.element_names()
    start = root.copy()
    if validator.is_valid(start):
        return True
    seen: set[str] = {to_xml(start)}
    queue: deque[tuple[XmlElement, int]] = deque([(start, 0)])
    explored = 0

    while queue:
        candidate, insertions = queue.popleft()
        if insertions >= max_insertions:
            continue
        for successor in _successors(candidate, names):
            key = to_xml(successor)
            if key in seen:
                continue
            seen.add(key)
            explored += 1
            if explored > node_limit:
                return None
            # Validity is checked at enqueue time so a hit never pays for
            # expanding the states queued before it.
            if validator.is_valid(successor):
                return True
            queue.append((successor, insertions + 1))
    return False


def _successors(root: XmlElement, names: tuple[str, ...]):
    """All single-insertion extensions of *root* (Definition 2, step (2)).

    Yields fresh copies; nodes are addressed by preorder index so each copy
    can be mutated independently.
    """
    nodes = list(root.iter_elements())
    for node_index, node in enumerate(nodes):
        child_count = len(node.children)
        for start in range(child_count + 1):
            for end in range(start, child_count + 1):
                for name in names:
                    clone_root = root.copy()
                    clone_node = list(clone_root.iter_elements())[node_index]
                    clone_node.wrap_children(start, end, name)
                    yield clone_root
