"""Whole-document checking via Earley parsing (the paper's baseline).

Theorem 1: ``w`` is potentially valid iff ``delta_T(w)`` belongs to
``L(G'_{T,r})``.  This module materializes exactly that statement: build
``G'_{T,r}`` (Section 3.2), expand it to a plain CFG, and run the Earley
recognizer over the ``delta_T`` token stream.  The same machinery with
``G_{T,r}`` decides plain validity, giving an independent cross-check of
the structural validator.

This is the correctness anchor for the fast recognizers and the comparator
of benchmark E2; Section 3.3's observation that ``G'`` is "highly
ambiguous" shows up as the heavy constants the benchmark measures.
"""

from __future__ import annotations

from repro.dtd.model import DTD
from repro.grammar.build import build_pv_ecfg, build_validity_ecfg
from repro.grammar.earley import EarleyRecognizer
from repro.grammar.ecfg import ecfg_to_cfg
from repro.xmlmodel.delta import delta_tokens
from repro.xmlmodel.tree import XmlDocument, XmlElement

__all__ = ["EarleyDocumentChecker"]


class EarleyDocumentChecker:
    """Exact whole-document validity and potential-validity via Earley."""

    def __init__(self, dtd: DTD) -> None:
        self.dtd = dtd
        self._pv = EarleyRecognizer(ecfg_to_cfg(build_pv_ecfg(dtd)))
        self._validity = EarleyRecognizer(ecfg_to_cfg(build_validity_ecfg(dtd)))

    def _tokens(self, document: XmlDocument | XmlElement) -> tuple[str, ...]:
        root = document.root if isinstance(document, XmlDocument) else document
        return delta_tokens(root)

    def is_potentially_valid(self, document: XmlDocument | XmlElement) -> bool:
        """Theorem 1's right-hand side: ``delta_T(w) ∈ L(G'_{T,r})``."""
        root = document.root if isinstance(document, XmlDocument) else document
        if root.name != self.dtd.root:
            return False
        # Undeclared element types surface as unknown tag terminals, which
        # the Earley recognizer rejects on its own.
        return self._pv.recognizes(self._tokens(root))

    def is_valid(self, document: XmlDocument | XmlElement) -> bool:
        """Membership in ``D(T, r)`` via ``G_{T,r}``."""
        root = document.root if isinstance(document, XmlDocument) else document
        if root.name != self.dtd.root:
            return False
        return self._validity.recognizes(self._tokens(root))
