"""Reference baselines.

* :mod:`repro.baselines.earley_pv` — whole-document checking by Earley
  parsing ``delta_T(w)`` against the expanded ``G'_{T,r}`` (Theorem 1) and
  ``G_{T,r}`` (plain validity).  Exact for every DTD, with the heavy
  constants the paper attributes to general CFG parsing (Section 3.3).
* :mod:`repro.baselines.naive` — a bounded breadth-first search over
  ``Ext(w, T)`` implementing Definitions 2-3 *literally*: ground truth for
  small property-test instances.
"""

from repro.baselines.earley_pv import EarleyDocumentChecker
from repro.baselines.naive import naive_potential_validity

__all__ = ["EarleyDocumentChecker", "naive_potential_validity"]
