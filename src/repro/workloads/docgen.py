"""Random *valid* document generation from a DTD.

The generator walks an element's original content model choosing random
alternatives/repetition counts, recursing into child elements.  Termination
and size control use the minimal-witness costs: once the node budget or the
depth budget runs out, every remaining choice is resolved toward the
cheapest completion, so the output is always finite and always valid
(property-tested against the validator).

The size knob drives benchmark scaling in ``n`` (the paper's token count),
the depth knob the ``D`` axis of Theorem 4.
"""

from __future__ import annotations

import math
import random

from repro.core.witness import element_costs
from repro.dtd.ast import Choice, ContentNode, Name, Opt, PCData, Plus, Seq, Star
from repro.dtd.model import DTD
from repro.errors import UnusableElementError
from repro.workloads.textgen import phrase
from repro.xmlmodel.tree import XmlDocument, XmlElement, XmlText

__all__ = ["DocumentGenerator"]


class DocumentGenerator:
    """Seeded generator of valid documents for one DTD.

    Parameters
    ----------
    dtd:
        The schema; its designated root becomes the document root.
    seed:
        Seed for the private :class:`random.Random`.
    max_repeat:
        Upper bound on the number of iterations generated for ``*``/``+``
        while the budget lasts.
    text_probability:
        Chance of emitting a text run at each ``#PCDATA`` opportunity.
    """

    def __init__(
        self,
        dtd: DTD,
        seed: int = 0,
        max_repeat: int = 3,
        text_probability: float = 0.8,
    ) -> None:
        self.dtd = dtd
        self.rng = random.Random(seed)
        self.max_repeat = max_repeat
        self.text_probability = text_probability
        self._costs = element_costs(dtd)
        if math.isinf(self._costs[dtd.root]):
            raise UnusableElementError((dtd.root,))

    # -- public API ----------------------------------------------------------

    def document(self, target_nodes: int = 40, max_depth: int = 12) -> XmlDocument:
        """Generate one valid document of roughly *target_nodes* elements."""
        budget = _Budget(target_nodes)
        root = self._element(self.dtd.root, budget, max_depth)
        return XmlDocument(root)

    def documents(self, count: int, target_nodes: int = 40, max_depth: int = 12):
        """Yield *count* independent documents."""
        for _ in range(count):
            yield self.document(target_nodes=target_nodes, max_depth=max_depth)

    # -- generation ----------------------------------------------------------------

    def _element(self, name: str, budget: "_Budget", depth_left: int) -> XmlElement:
        budget.spend()
        node = XmlElement(name)
        regex = self.dtd.content_regex(name)
        if regex is None:
            return node
        frugal = budget.exhausted() or depth_left <= 0
        self._budget = budget
        for part in self._word(regex, frugal):
            if part is None:
                node.append(XmlText(phrase(self.rng)))
            else:
                node.append(self._element(part, budget, depth_left - 1))
        return node

    def _repeat_upper(self) -> int:
        """Upper repetition bound, scaled by the remaining node budget so
        the requested target size is actually approached."""
        remaining = getattr(self, "_budget", None)
        if remaining is None:
            return self.max_repeat
        bonus = max(0, min(10, remaining.remaining // 15))
        return self.max_repeat + bonus

    def _word(self, node: ContentNode, frugal: bool) -> list[str | None]:
        """A random word of the content model: element names and ``None`` = text.

        In *frugal* mode every choice minimizes witness cost and repetitions
        collapse, guaranteeing termination.
        """
        if isinstance(node, PCData):
            if not frugal and self.rng.random() < self.text_probability:
                return [None]
            return []
        if isinstance(node, Name):
            return [node.name]
        if isinstance(node, Seq):
            word: list[str | None] = []
            for item in node.items:
                word.extend(self._word(item, frugal))
            return word
        if isinstance(node, Choice):
            if frugal:
                best = min(node.items, key=self._branch_cost)
                return self._word(best, frugal)
            affordable = [
                item for item in node.items if not math.isinf(self._branch_cost(item))
            ]
            return self._word(self.rng.choice(affordable), frugal)
        if isinstance(node, Star):
            # A starred subexpression may contain unproductive symbols even
            # inside a productive element; zero iterations is always legal.
            if frugal or math.isinf(self._branch_cost(node.item)):
                return []
            word = []
            for _ in range(self.rng.randint(0, self._repeat_upper())):
                word.extend(self._word(node.item, frugal))
            return word
        if isinstance(node, Plus):
            # A reachable Plus always has a finite-cost body (otherwise the
            # owning element would be unproductive and never generated).
            repeats = 1 if frugal else self.rng.randint(1, max(1, self._repeat_upper()))
            word = []
            for _ in range(repeats):
                word.extend(self._word(node.item, frugal))
            return word
        if isinstance(node, Opt):
            skip = (
                frugal
                or math.isinf(self._branch_cost(node.item))
                or self.rng.random() < 0.5
            )
            return [] if skip else self._word(node.item, frugal)
        raise TypeError(f"unexpected content node {node!r}")

    def _branch_cost(self, node: ContentNode) -> float:
        from repro.dtd import ast

        return ast.min_cost_word(node, self._costs.__getitem__)


class _Budget:
    """A decrementing element budget shared across one generation."""

    __slots__ = ("remaining",)

    def __init__(self, total: int) -> None:
        self.remaining = total

    def spend(self) -> None:
        self.remaining -= 1

    def exhausted(self) -> bool:
        return self.remaining <= 0
