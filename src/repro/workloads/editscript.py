"""Realistic guarded-editing scripts.

The paper's editorial process starts from (mostly) bare text and adds markup
one region at a time; every intermediate document is potentially valid.  We
manufacture such sessions by running the process *backwards* from a random
valid document: repeatedly delete a random element's tags (recording the
inverse wrap operation), until only the root remains.  Replaying the
recorded wraps in reverse order rebuilds the document, and — because every
intermediate state is the valid document minus a subset of its markup —
Theorem 2 guarantees each state is potentially valid, so a correct guarded
session accepts every operation.  That property is itself a test, and the
replay rate is benchmark E8's workload.
"""

from __future__ import annotations

import random

from repro.editor.document import apply_operation, invert
from repro.editor.operations import DeleteMarkup, InsertMarkup, NodePath
from repro.xmlmodel.tree import XmlDocument, XmlElement

__all__ = ["path_of", "markup_script"]


def path_of(element: XmlElement) -> NodePath:
    """The child-index path of *element* from its tree root."""
    indices: list[int] = []
    node = element
    while node.parent is not None:
        indices.append(node.parent.index_of(node))
        node = node.parent
    return tuple(reversed(indices))


def markup_script(
    document: XmlDocument, rng: random.Random
) -> tuple[XmlDocument, list[InsertMarkup]]:
    """Deconstruct *document* into (skeleton, wrap script).

    Applying the returned :class:`~repro.editor.operations.InsertMarkup`
    operations to the skeleton, in order, reproduces *document* exactly;
    every intermediate state is potentially valid w.r.t. any DTD the
    original was valid for (Theorem 2).
    """
    working = document.copy()
    reversed_ops: list[InsertMarkup] = []
    while True:
        non_root = [
            element
            for element in working.root.iter_elements()
            if element.parent is not None
        ]
        if not non_root:
            break
        victim = rng.choice(non_root)
        deletion = DeleteMarkup(target=path_of(victim))
        inverse = invert(working, deletion)
        assert isinstance(inverse, InsertMarkup)
        reversed_ops.append(inverse)
        apply_operation(working, deletion)
    return working, list(reversed(reversed_ops))
