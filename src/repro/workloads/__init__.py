"""Workload generators for tests and benchmarks.

Everything is deterministic given a seed:

* :mod:`repro.workloads.textgen` — pseudo-prose character data,
* :mod:`repro.workloads.docgen` — random *valid* documents for a DTD
  (size- and depth-controlled; the depth axis matters because the paper's
  complexity bound is ``O(kD·n)``),
* :mod:`repro.workloads.degrade` — Theorem 2 degradation: deleting random
  markup from a valid document yields a potentially valid one,
* :mod:`repro.workloads.corrupt` — structure-breaking mutations used to
  produce (probably) non-potentially-valid inputs,
* :mod:`repro.workloads.editscript` — realistic guarded editing sessions:
  deconstruct a valid document into a wrap-operation script whose
  intermediate states are all potentially valid.
"""

from repro.workloads.textgen import words, phrase
from repro.workloads.docgen import DocumentGenerator
from repro.workloads.degrade import degrade
from repro.workloads.corrupt import corrupt_rename, corrupt_swap, corrupt_inject
from repro.workloads.editscript import markup_script

__all__ = [
    "words",
    "phrase",
    "DocumentGenerator",
    "degrade",
    "corrupt_rename",
    "corrupt_swap",
    "corrupt_inject",
    "markup_script",
]
