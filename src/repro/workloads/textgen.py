"""Deterministic pseudo-prose generation.

Document-centric XML wraps *existing text* (the paper's Example 1 marks up
"A quick brown fox jumps over a lazy dog"); these helpers produce seeded
filler prose so workloads are reproducible without bundling a corpus.
"""

from __future__ import annotations

import random

__all__ = ["WORDS", "words", "phrase"]

#: A small stable vocabulary (pangram-flavoured, no markup characters).
WORDS: tuple[str, ...] = (
    "a", "quick", "brown", "fox", "jumps", "over", "the", "lazy", "dog",
    "scribe", "copies", "an", "old", "folio", "with", "faded", "ink",
    "margin", "notes", "gloss", "verse", "line", "reads", "under", "light",
    "letter", "forms", "shift", "between", "hands", "while", "pages", "turn",
)


def words(rng: random.Random, count: int) -> list[str]:
    """Return *count* seeded words."""
    return [rng.choice(WORDS) for _ in range(count)]


def phrase(rng: random.Random, min_words: int = 1, max_words: int = 6) -> str:
    """Return a short seeded phrase (never empty, never all-whitespace)."""
    count = rng.randint(min_words, max_words)
    return " ".join(words(rng, count))
