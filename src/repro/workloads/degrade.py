"""Theorem 2 degradation: valid documents → potentially valid documents.

The paper proves potential validity is closed under markup deletion, so
removing random element tags (splicing children into the parent) from a
*valid* document always produces a *potentially valid* one.  This is the
canonical way to manufacture realistic "mid-edit" documents: it simulates
running the editorial process backwards.
"""

from __future__ import annotations

import random

from repro.xmlmodel.tree import XmlDocument

__all__ = ["degrade"]


def degrade(
    document: XmlDocument,
    rng: random.Random,
    fraction: float = 0.5,
    keep: frozenset[str] = frozenset(),
) -> tuple[XmlDocument, int]:
    """Unwrap a random *fraction* of non-root elements of a copy of *document*.

    Parameters
    ----------
    document:
        Source document (not modified).
    rng:
        Seeded randomness.
    fraction:
        Fraction of non-root elements whose tags are deleted.
    keep:
        Element names never unwrapped (useful to preserve anchors).

    Returns the degraded copy and the number of tag pairs removed.
    """
    copy = document.copy()
    candidates = [
        element
        for element in copy.root.iter_elements()
        if element.parent is not None and element.name not in keep
    ]
    rng.shuffle(candidates)
    target = int(len(candidates) * fraction)
    removed = 0
    for element in candidates[:target]:
        parent = element.parent
        if parent is None:  # already unwrapped as part of an ancestor? no:
            continue  # pragma: no cover - unwrap keeps descendants attached
        parent.unwrap_child(element)
        removed += 1
    return copy, removed
