"""Structure-breaking mutations.

These produce documents that are *usually* not potentially valid — the
Example 1 string ``w`` is exactly a "swap" corruption of ``s``.  None of the
mutations is guaranteed to break potential validity for every DTD (a mixed
content model forgives reordering, for instance), so tests use them as
differential fodder (all checkers must still agree) and benchmarks pair them
with DTDs where the breakage is known.
"""

from __future__ import annotations

import random

from repro.xmlmodel.tree import XmlDocument, XmlElement

__all__ = ["corrupt_swap", "corrupt_rename", "corrupt_inject"]


def _elements_with_parent(document: XmlDocument) -> list[XmlElement]:
    return [
        element
        for element in document.root.iter_elements()
        if element.parent is not None
    ]


def corrupt_swap(document: XmlDocument, rng: random.Random) -> XmlDocument | None:
    """Swap two adjacent element children somewhere (order violation).

    Returns a mutated copy, or ``None`` when no node has two adjacent
    element children to swap.
    """
    copy = document.copy()
    candidates: list[tuple[XmlElement, int, int]] = []
    for element in copy.root.iter_elements():
        element_positions = [
            index
            for index, child in enumerate(element.children)
            if isinstance(child, XmlElement)
        ]
        for first, second in zip(element_positions, element_positions[1:]):
            first_child = element.children[first]
            second_child = element.children[second]
            assert isinstance(first_child, XmlElement)
            assert isinstance(second_child, XmlElement)
            if first_child.name != second_child.name:
                candidates.append((element, first, second))
    if not candidates:
        return None
    parent, first, second = rng.choice(candidates)
    parent.children[first], parent.children[second] = (
        parent.children[second],
        parent.children[first],
    )
    return copy


def corrupt_rename(
    document: XmlDocument, rng: random.Random, names: tuple[str, ...]
) -> XmlDocument | None:
    """Rename one non-root element to a different declared name."""
    copy = document.copy()
    candidates = _elements_with_parent(copy)
    if not candidates or len(names) < 2:
        return None
    target = rng.choice(candidates)
    others = [name for name in names if name != target.name]
    target.name = rng.choice(others)
    return copy


def corrupt_inject(
    document: XmlDocument, rng: random.Random, name: str
) -> XmlDocument:
    """Append a fresh empty ``<name>`` under a random element."""
    copy = document.copy()
    elements = list(copy.root.iter_elements())
    rng.choice(elements).append(XmlElement(name))
    return copy
