"""The DTD object model: ``T = <Gamma, T>`` plus content-spec categories.

XML 1.0 distinguishes four content-spec categories for an element type
declaration (paper ref [2], production [46] ``contentspec``):

* ``EMPTY`` — no content at all,
* ``ANY`` — any sequence of declared elements and character data,
* *mixed* — ``(#PCDATA | a | b | ...)*`` (or bare ``(#PCDATA)``),
* *children* — a deterministic regular expression over element names built
  from ``,``, ``|``, ``?``, ``*``, ``+``.

Potential validity only depends on this structure (attribute declarations are
irrelevant — paper footnote 3), so the model stores exactly this.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping

from repro.dtd import ast
from repro.dtd.ast import Choice, ContentNode, Name, PCData, Star
from repro.errors import DTDSemanticError, UnknownElementError

__all__ = [
    "PCDATA",
    "ContentSpec",
    "EmptyContent",
    "AnyContent",
    "MixedContent",
    "ChildrenContent",
    "ElementDecl",
    "DTD",
]

#: Sentinel used throughout the library to denote the ``#PCDATA`` "symbol"
#: wherever element names are used (reachability targets, DAG star-group
#: member sets, token alphabets).  A plain module-level constant string that
#: can never collide with an XML element name because ``#`` is not a name
#: character.
PCDATA: str = "#PCDATA"


@dataclass(frozen=True)
class EmptyContent:
    """``EMPTY`` content: the element may contain nothing."""

    def regex(self, dtd: "DTD") -> ContentNode | None:
        return None


@dataclass(frozen=True)
class AnyContent:
    """``ANY`` content: any mix of declared elements and character data.

    The paper (Section 3.1) rewrites ``ANY`` as
    ``(Z1 | Z2 | ... | Zn | PCDATA)*`` over *all* element types; ``regex``
    performs exactly that expansion against the owning DTD.
    """

    def regex(self, dtd: "DTD") -> ContentNode:
        alternatives: tuple[ContentNode, ...] = tuple(
            Name(name) for name in dtd.element_names()
        ) + (PCData(),)
        return Star(Choice(alternatives))


@dataclass(frozen=True)
class MixedContent:
    """Mixed content ``(#PCDATA | n1 | ... | nk)*``; ``names`` may be empty.

    A bare ``(#PCDATA)`` declaration is represented as ``MixedContent(())``
    — over the collapsed-text token alphabet the two forms accept the same
    content (any run of character data), matching the paper's treatment of
    all content as strings.
    """

    names: tuple[str, ...] = ()

    def regex(self, dtd: "DTD") -> ContentNode:
        alternatives: tuple[ContentNode, ...] = (PCData(),) + tuple(
            Name(name) for name in self.names
        )
        return Star(Choice(alternatives))


@dataclass(frozen=True)
class ChildrenContent:
    """Element (children) content: a regular expression over element names."""

    model: ContentNode

    def __post_init__(self) -> None:
        if ast.mentions_pcdata(self.model):
            raise DTDSemanticError(
                "#PCDATA may only appear in mixed content (XML 1.0 [51])"
            )

    def regex(self, dtd: "DTD") -> ContentNode:
        return self.model


ContentSpec = EmptyContent | AnyContent | MixedContent | ChildrenContent


@dataclass(frozen=True)
class ElementDecl:
    """A single ``<!ELEMENT name contentspec>`` declaration."""

    name: str
    content: ContentSpec

    @property
    def is_empty(self) -> bool:
        return isinstance(self.content, EmptyContent)

    @property
    def is_any(self) -> bool:
        return isinstance(self.content, AnyContent)

    @property
    def is_mixed(self) -> bool:
        return isinstance(self.content, MixedContent)

    @property
    def is_children(self) -> bool:
        return isinstance(self.content, ChildrenContent)

    def allows_pcdata_directly(self) -> bool:
        """True iff character data is legal *directly* inside this element.

        This is the exact predicate behind the paper's O(1) character-data
        insertion rule in the mixed-content case (Proposition 3 discussion).
        """
        return isinstance(self.content, (MixedContent, AnyContent))

    def referenced_names(self) -> frozenset[str]:
        """Element names occurring syntactically in this declaration's RHS.

        These are exactly the targets of this element's out-edges in the
        paper's reachability graph ``R_T`` (Definition 5).
        """
        if isinstance(self.content, EmptyContent):
            return frozenset()
        if isinstance(self.content, AnyContent):
            # Resolved against the owning DTD by DTD.referenced_names().
            return frozenset()
        if isinstance(self.content, MixedContent):
            return frozenset(self.content.names)
        return ast.element_names(self.content.model)


class DTD:
    """A parsed DTD: ordered element declarations plus a designated root.

    The declaration order is preserved (it matters for serialization and for
    stable iteration in experiments), lookups are by name, and the object is
    immutable after construction.  Derived analyses (normalization,
    reachability, classification, DAGs) live in their own modules and are
    cached per-DTD by the callers that need them.
    """

    __slots__ = ("_decls", "_by_name", "root", "name")

    def __init__(
        self,
        decls: Iterator[ElementDecl] | list[ElementDecl] | tuple[ElementDecl, ...],
        root: str,
        name: str = "dtd",
    ) -> None:
        decls = tuple(decls)
        by_name: dict[str, ElementDecl] = {}
        for decl in decls:
            if decl.name in by_name:
                raise DTDSemanticError(
                    f"duplicate element type declaration for {decl.name!r}"
                )
            by_name[decl.name] = decl
        if root not in by_name:
            raise UnknownElementError(root)
        self._decls = decls
        self._by_name: Mapping[str, ElementDecl] = by_name
        self.root = root
        self.name = name
        self._validate_references()

    def _validate_references(self) -> None:
        declared = set(self._by_name)
        for decl in self._decls:
            missing = decl.referenced_names() - declared
            if missing:
                listed = ", ".join(sorted(missing))
                raise DTDSemanticError(
                    f"element {decl.name!r} references undeclared element(s): {listed}"
                )

    # -- basic access -----------------------------------------------------

    def __iter__(self) -> Iterator[ElementDecl]:
        return iter(self._decls)

    def __len__(self) -> int:
        return len(self._decls)

    def __contains__(self, name: object) -> bool:
        return name in self._by_name

    def __getitem__(self, name: str) -> ElementDecl:
        try:
            return self._by_name[name]
        except KeyError:
            raise UnknownElementError(name) from None

    def get(self, name: str) -> ElementDecl | None:
        return self._by_name.get(name)

    def element_names(self) -> tuple[str, ...]:
        """All declared element type names, in declaration order."""
        return tuple(decl.name for decl in self._decls)

    def content_regex(self, name: str) -> ContentNode | None:
        """The content model of *name* as a plain regex (``None`` for EMPTY).

        ``ANY`` and mixed content are expanded per the paper's Section 3.1
        conventions; children content is returned as declared.
        """
        return self[name].content.regex(self)

    def referenced_names(self, name: str) -> frozenset[str]:
        """Out-neighbours of *name* in the reachability graph ``R_T``.

        For ``ANY`` content every declared element (and ``#PCDATA``) is
        referenced, matching the paper's rewrite of ``ANY``.
        """
        decl = self[name]
        if isinstance(decl.content, AnyContent):
            return frozenset(self.element_names())
        return decl.referenced_names()

    def mentions_pcdata(self, name: str) -> bool:
        """True iff ``#PCDATA`` occurs in the declaration of *name*."""
        decl = self[name]
        return isinstance(decl.content, (MixedContent, AnyContent))

    # -- size measures used by the complexity experiments -------------------

    @property
    def element_count(self) -> int:
        """The paper's ``m = |T|``."""
        return len(self._decls)

    @property
    def occurrence_count(self) -> int:
        """The paper's ``k``: element occurrences over all ``r_x`` expressions.

        ``k >= m`` and reading all rules costs ``O(k)`` (Section 4.4).  We
        count ``Name`` and ``PCData`` leaves of every content model, with
        ``ANY`` counting as one occurrence of every element plus ``#PCDATA``
        (its Section 3.1 expansion).
        """
        total = 0
        for decl in self._decls:
            regex = decl.content.regex(self)
            if regex is None:
                continue
            total += sum(
                1 for node in ast.walk(regex) if isinstance(node, (Name, PCData))
            )
        return total

    # -- misc ----------------------------------------------------------------

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DTD(name={self.name!r}, root={self.root!r}, "
            f"elements={self.element_count})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DTD):
            return NotImplemented
        return self._decls == other._decls and self.root == other.root

    def __hash__(self) -> int:
        return hash((self._decls, self.root))
