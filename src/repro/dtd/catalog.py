"""A catalog of DTDs: every DTD from the paper plus realistic corpora.

The paper's running examples:

* :func:`paper_figure1` — the Figure 1 DTD used by Examples 1-4 and Figure 6,
* :func:`example5_t1` — ``T1``, the PV-strong recursive DTD whose greedy
  recognition loops without a depth bound (Figure 7),
* :func:`example6_t2` — ``T2``, where one recursive descent step is
  *necessary* to accept a potentially valid string.

Realistic document-centric schemas (the paper's motivating domain is
digital-library text encoding — its authors built the xTagger editor for
manuscript markup):

* :func:`tei_lite` — a TEI-flavoured subset for scholarly editions,
* :func:`xhtml_basic` — an XHTML-flavoured subset; its inline elements
  (``b``/``i``/``em``...) nest mutually through mixed content, making it
  **PV-weak recursive** exactly as the paper observes about XHTML,
* :func:`docbook_article` — a DocBook-flavoured article subset,
* :func:`play` — dramatic text markup (acts/scenes/speeches),
* :func:`dictionary` — dictionary entry markup,
* :func:`manuscript` — diplomatic-transcription markup with damage/gap/
  correction layers, the paper's own editorial use case.

Pathological DTDs for edge-case tests:

* :func:`strong_recursive_chain` — PV-strong recursion through a 3-cycle,
* :func:`with_unproductive` — contains an element with no finite valid
  subtree (violates the paper's usability assumption),
* :func:`with_any` — exercises ``ANY`` content,
* :func:`deep_chain` — a long non-recursive chain (stresses descend depth).

Every function returns a freshly parsed, independent :class:`~repro.dtd.model.DTD`.
"""

from __future__ import annotations

from typing import Callable

from repro.dtd.model import DTD
from repro.dtd.parser import parse_dtd

__all__ = [
    "paper_figure1",
    "example5_t1",
    "example6_t2",
    "tei_lite",
    "xhtml_basic",
    "docbook_article",
    "play",
    "dictionary",
    "manuscript",
    "strong_recursive_chain",
    "with_unproductive",
    "with_any",
    "deep_chain",
    "CATALOG",
    "catalog_names",
    "load",
]

_PAPER_FIGURE1 = """
<!ELEMENT r (a+)>
<!ELEMENT a (b?, (c | f), d)>
<!ELEMENT b (d | f)>
<!ELEMENT c (#PCDATA)>
<!ELEMENT d (#PCDATA | e)*>
<!ELEMENT e EMPTY>
<!ELEMENT f (c, e)>
"""


def paper_figure1() -> DTD:
    """The sample DTD of Figure 1 (root ``r``).

    Note: the paper prints ``<!ELEMENT c #PCDATA>`` without parentheses and
    declares ``f`` as ``(c, e)`` in Figure 1 while Example 3's grammar lists
    ``F -> C, B, E``; we follow Figure 1, which is what Examples 1-4 and
    Figure 6 actually use.
    """
    return parse_dtd(_PAPER_FIGURE1, root="r", name="paper-figure1")


_T1 = """
<!ELEMENT a (a | b*)>
<!ELEMENT b EMPTY>
"""


def example5_t1() -> DTD:
    """Example 5's ``T1``: ``a`` is PV-strong recursive; naive greedy loops."""
    return parse_dtd(_T1, root="a", name="example5-T1")


_T2 = """
<!ELEMENT a ((a | b), b)>
<!ELEMENT b EMPTY>
"""


def example6_t2() -> DTD:
    """Example 6's ``T2``: one recursive descent step is necessary."""
    return parse_dtd(_T2, root="a", name="example6-T2")


_TEI_LITE = """
<!ELEMENT tei       (header, text)>
<!ELEMENT header    (title, author*, sourceDesc?)>
<!ELEMENT title     (#PCDATA)>
<!ELEMENT author    (#PCDATA)>
<!ELEMENT sourceDesc (#PCDATA | bibl)*>
<!ELEMENT bibl      (#PCDATA)>
<!ELEMENT text      (front?, body, back?)>
<!ELEMENT front     (titlePage?, div*)>
<!ELEMENT titlePage (title, author*)>
<!ELEMENT body      (div+)>
<!ELEMENT back      (div*)>
<!ELEMENT div       (head?, (p | lg | quote | div)+)>
<!ELEMENT head      (#PCDATA | hi)*>
<!ELEMENT p         (#PCDATA | hi | ref | note | name | date)*>
<!ELEMENT lg        (l+)>
<!ELEMENT l         (#PCDATA | hi | note)*>
<!ELEMENT quote     (p+)>
<!ELEMENT hi        (#PCDATA | hi)*>
<!ELEMENT ref       (#PCDATA)>
<!ELEMENT note      (#PCDATA | hi | ref)*>
<!ELEMENT name      (#PCDATA)>
<!ELEMENT date      (#PCDATA)>
"""


def tei_lite() -> DTD:
    """A TEI-flavoured scholarly-edition subset (recursive ``div``/``hi``)."""
    return parse_dtd(_TEI_LITE, root="tei", name="tei-lite")


_XHTML_BASIC = """
<!ELEMENT html   (head, body)>
<!ELEMENT head   (title)>
<!ELEMENT title  (#PCDATA)>
<!ELEMENT body   (p | ul | ol | blockquote | pre | h1 | h2 | table)*>
<!ELEMENT p      (#PCDATA | b | i | em | strong | code | a | span | br)*>
<!ELEMENT h1     (#PCDATA | b | i | em | strong | code | a | span)*>
<!ELEMENT h2     (#PCDATA | b | i | em | strong | code | a | span)*>
<!ELEMENT b      (#PCDATA | b | i | em | strong | code | a | span)*>
<!ELEMENT i      (#PCDATA | b | i | em | strong | code | a | span)*>
<!ELEMENT em     (#PCDATA | b | i | em | strong | code | a | span)*>
<!ELEMENT strong (#PCDATA | b | i | em | strong | code | a | span)*>
<!ELEMENT code   (#PCDATA)>
<!ELEMENT a      (#PCDATA | b | i | em | strong | code | span)*>
<!ELEMENT span   (#PCDATA | b | i | em | strong | code | a | span)*>
<!ELEMENT br     EMPTY>
<!ELEMENT ul     (li+)>
<!ELEMENT ol     (li+)>
<!ELEMENT li     (#PCDATA | b | i | em | strong | code | a | span | ul | ol)*>
<!ELEMENT blockquote (p+)>
<!ELEMENT pre    (#PCDATA)>
<!ELEMENT table  (tr+)>
<!ELEMENT tr     (td+)>
<!ELEMENT td     (#PCDATA | b | i | em | strong | code | a | span | p)*>
"""


def xhtml_basic() -> DTD:
    """An XHTML-flavoured subset; inline nesting makes it PV-weak recursive."""
    return parse_dtd(_XHTML_BASIC, root="html", name="xhtml-basic")


_DOCBOOK = """
<!ELEMENT article   (info, section+)>
<!ELEMENT info      (title, subtitle?, author+, pubdate?)>
<!ELEMENT title     (#PCDATA | emphasis)*>
<!ELEMENT subtitle  (#PCDATA)>
<!ELEMENT author    (firstname, surname, affiliation?)>
<!ELEMENT firstname (#PCDATA)>
<!ELEMENT surname   (#PCDATA)>
<!ELEMENT affiliation (#PCDATA)>
<!ELEMENT pubdate   (#PCDATA)>
<!ELEMENT section   (title, (para | itemizedlist | orderedlist | programlisting | figure | section)*)>
<!ELEMENT para      (#PCDATA | emphasis | literal | link | footnote)*>
<!ELEMENT emphasis  (#PCDATA | emphasis | literal)*>
<!ELEMENT literal   (#PCDATA)>
<!ELEMENT link      (#PCDATA)>
<!ELEMENT footnote  (para+)>
<!ELEMENT itemizedlist (listitem+)>
<!ELEMENT orderedlist  (listitem+)>
<!ELEMENT listitem  (para+)>
<!ELEMENT programlisting (#PCDATA)>
<!ELEMENT figure    (title, mediaobject)>
<!ELEMENT mediaobject (imageobject | textobject)>
<!ELEMENT imageobject (#PCDATA)>
<!ELEMENT textobject  (para)>
"""


def docbook_article() -> DTD:
    """A DocBook-flavoured article subset (recursive ``section``/``emphasis``)."""
    return parse_dtd(_DOCBOOK, root="article", name="docbook-article")


_PLAY = """
<!ELEMENT play      (title, personae, act+)>
<!ELEMENT title     (#PCDATA)>
<!ELEMENT personae  (persona+)>
<!ELEMENT persona   (#PCDATA)>
<!ELEMENT act       (acttitle, scene+)>
<!ELEMENT acttitle  (#PCDATA)>
<!ELEMENT scene     (scenetitle, (speech | stagedir)+)>
<!ELEMENT scenetitle (#PCDATA)>
<!ELEMENT speech    (speaker, (line | stagedir)+)>
<!ELEMENT speaker   (#PCDATA)>
<!ELEMENT line      (#PCDATA)>
<!ELEMENT stagedir  (#PCDATA)>
"""


def play() -> DTD:
    """Dramatic-text markup (non-recursive; a classic document-centric DTD)."""
    return parse_dtd(_PLAY, root="play", name="play")


_DICTIONARY = """
<!ELEMENT dictionary (entry+)>
<!ELEMENT entry     (headword, pronunciation?, pos, sense+)>
<!ELEMENT headword  (#PCDATA)>
<!ELEMENT pronunciation (#PCDATA)>
<!ELEMENT pos       (#PCDATA)>
<!ELEMENT sense     (definition, example*, crossref*)>
<!ELEMENT definition (#PCDATA | term)*>
<!ELEMENT term      (#PCDATA)>
<!ELEMENT example   (#PCDATA | term)*>
<!ELEMENT crossref  (#PCDATA)>
"""


def dictionary() -> DTD:
    """Dictionary-entry markup (non-recursive, sequence heavy)."""
    return parse_dtd(_DICTIONARY, root="dictionary", name="dictionary")


_MANUSCRIPT = """
<!ELEMENT manuscript (msheader, folio+)>
<!ELEMENT msheader  (title, repository, shelfmark)>
<!ELEMENT title     (#PCDATA)>
<!ELEMENT repository (#PCDATA)>
<!ELEMENT shelfmark (#PCDATA)>
<!ELEMENT folio     (column+)>
<!ELEMENT column    (textline+)>
<!ELEMENT textline  (#PCDATA | damage | gap | add | del | corr | abbr | gloss)*>
<!ELEMENT damage    (#PCDATA | gap | abbr)*>
<!ELEMENT gap       EMPTY>
<!ELEMENT add       (#PCDATA | abbr)*>
<!ELEMENT del       (#PCDATA | abbr)*>
<!ELEMENT corr      (#PCDATA)>
<!ELEMENT abbr      (#PCDATA)>
<!ELEMENT gloss     (#PCDATA | abbr)*>
"""


def manuscript() -> DTD:
    """Diplomatic-transcription markup — the xTagger editorial use case."""
    return parse_dtd(_MANUSCRIPT, root="manuscript", name="manuscript")


_STRONG_CHAIN = """
<!ELEMENT x ((y | leaf), leaf)>
<!ELEMENT y ((z | leaf), leaf?)>
<!ELEMENT z ((x | leaf))>
<!ELEMENT leaf EMPTY>
"""


def strong_recursive_chain() -> DTD:
    """PV-strong recursion through the 3-cycle ``x -> y -> z -> x``."""
    return parse_dtd(_STRONG_CHAIN, root="x", name="strong-chain")


_WITH_UNPRODUCTIVE = """
<!ELEMENT root (ok | bad)>
<!ELEMENT ok   (#PCDATA)>
<!ELEMENT bad  (worse)>
<!ELEMENT worse (bad)>
"""


def with_unproductive() -> DTD:
    """``bad``/``worse`` have no finite valid subtree (usability violated)."""
    return parse_dtd(_WITH_UNPRODUCTIVE, root="root", name="with-unproductive")


_WITH_ANY = """
<!ELEMENT doc  (meta, payload)>
<!ELEMENT meta (#PCDATA)>
<!ELEMENT payload ANY>
<!ELEMENT widget (meta?)>
"""


def with_any() -> DTD:
    """Exercises ``ANY`` content (Section 3.1's rewrite)."""
    return parse_dtd(_WITH_ANY, root="doc", name="with-any")


def deep_chain(length: int = 12) -> DTD:
    """A non-recursive chain ``c0 -> c1 -> ... -> c<length>`` of optional nesting.

    Used to stress missing-element descent depth without recursion.
    """
    lines = []
    for index in range(length):
        lines.append(f"<!ELEMENT c{index} (c{index + 1}?, leaf?)>")
    lines.append(f"<!ELEMENT c{length} (#PCDATA)>")
    lines.append("<!ELEMENT leaf EMPTY>")
    return parse_dtd("\n".join(lines), root="c0", name=f"deep-chain-{length}")


#: Name -> constructor registry for scripted experiments.
CATALOG: dict[str, Callable[[], DTD]] = {
    "paper-figure1": paper_figure1,
    "example5-T1": example5_t1,
    "example6-T2": example6_t2,
    "tei-lite": tei_lite,
    "xhtml-basic": xhtml_basic,
    "docbook-article": docbook_article,
    "play": play,
    "dictionary": dictionary,
    "manuscript": manuscript,
    "strong-chain": strong_recursive_chain,
    "with-unproductive": with_unproductive,
    "with-any": with_any,
}


def catalog_names() -> tuple[str, ...]:
    """All registered catalog DTD names, in a stable order."""
    return tuple(CATALOG)


def load(name: str) -> DTD:
    """Instantiate a catalog DTD by name (raises ``KeyError`` for unknown names)."""
    return CATALOG[name]()
