"""DTD substrate: content-model AST, parser, analysis, normalization, corpora.

This package implements everything the paper calls ``T = <Gamma, T>`` — the
set of Element Type Declarations and the set of element types — plus the
derived artifacts Sections 3.3 and 4 rely on:

* :mod:`repro.dtd.ast` — content-model regular expressions,
* :mod:`repro.dtd.lexer` / :mod:`repro.dtd.parser` — DTD text parsing,
* :mod:`repro.dtd.model` — the :class:`~repro.dtd.model.DTD` and
  :class:`~repro.dtd.model.ElementDecl` objects,
* :mod:`repro.dtd.normalize` — Corollary 3.1 normal form,
* :mod:`repro.dtd.stargroups` — Definition 4 star-groups and the
  Proposition 1 flattening,
* :mod:`repro.dtd.analysis` — usability, the reachability graph ``R_T``
  (Definition 5) with its lookup table ``LT``, and the recursion
  classification of Definitions 6-8,
* :mod:`repro.dtd.catalog` — the paper's DTDs plus realistic
  document-centric corpora,
* :mod:`repro.dtd.random_gen` — a seeded random DTD generator.
"""

from repro.dtd.ast import (
    Choice,
    ContentNode,
    Name,
    Opt,
    PCData,
    Plus,
    Seq,
    Star,
)
from repro.dtd.model import (
    PCDATA,
    AnyContent,
    ChildrenContent,
    ContentSpec,
    DTD,
    ElementDecl,
    EmptyContent,
    MixedContent,
)
from repro.dtd.parser import parse_dtd
from repro.dtd.serialize import dtd_to_text

__all__ = [
    "Choice",
    "ContentNode",
    "Name",
    "Opt",
    "PCData",
    "Plus",
    "Seq",
    "Star",
    "PCDATA",
    "AnyContent",
    "ChildrenContent",
    "ContentSpec",
    "DTD",
    "ElementDecl",
    "EmptyContent",
    "MixedContent",
    "parse_dtd",
    "dtd_to_text",
]
