"""Corollary 3.1 normal form for content models.

The paper proves (Corollary 3.1) that for the *potential validity* language
the ``?`` operator can be removed outright and every ``+`` replaced by ``*``
without changing ``L(G'_{T,r})`` — a consequence of Theorem 3 (every
nonterminal of ``G'`` derives the empty string).  All PV machinery
(star-groups, the DAG model, the recognizers) operates on this normal form;
the *standard* validator keeps the original models, where ``?``/``+`` of
course still matter.
"""

from __future__ import annotations

from repro.dtd.ast import (
    Choice,
    ContentNode,
    Name,
    Opt,
    PCData,
    Plus,
    Seq,
    Star,
)
from repro.dtd.model import DTD

__all__ = ["normalize_node", "normalized_content"]


def normalize_node(node: ContentNode) -> ContentNode:
    """Return *node* with every ``?`` dropped and every ``+`` turned into ``*``.

    The transformation is purely structural and preserves the paper's
    position counting: no ``Name``/``PCData`` leaf is added or removed.

    >>> from repro.dtd.parser import parse_content_spec
    >>> from repro.dtd.ast import to_text
    >>> model = parse_content_spec("(b?, (c | f)+, d)").model
    >>> to_text(normalize_node(model))
    '(b, (c | f)*, d)'
    """
    if isinstance(node, (PCData, Name)):
        return node
    if isinstance(node, Seq):
        return Seq(tuple(normalize_node(item) for item in node.items))
    if isinstance(node, Choice):
        return Choice(tuple(normalize_node(item) for item in node.items))
    if isinstance(node, Star):
        return Star(normalize_node(node.item))
    if isinstance(node, Plus):
        return Star(normalize_node(node.item))
    if isinstance(node, Opt):
        return normalize_node(node.item)
    raise TypeError(f"unexpected content node {node!r}")


def normalized_content(dtd: DTD, name: str) -> ContentNode | None:
    """The Corollary 3.1 normal form of *name*'s content model.

    Returns ``None`` for ``EMPTY`` content.  ``ANY`` and mixed content are
    first expanded to their regex form (Section 3.1), which is already
    ``?``/``+`` free, and then normalized for uniformity.
    """
    regex = dtd.content_regex(name)
    if regex is None:
        return None
    return normalize_node(regex)
