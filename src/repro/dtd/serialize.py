"""Render a :class:`~repro.dtd.model.DTD` back to declaration text.

Round-tripping (``parse_dtd(dtd_to_text(dtd)) == dtd``) is covered by
property tests; canonical spacing follows the paper's Figure 1 style.
"""

from __future__ import annotations

from repro.dtd import ast
from repro.dtd.model import (
    AnyContent,
    ChildrenContent,
    DTD,
    ElementDecl,
    EmptyContent,
    MixedContent,
)

__all__ = ["decl_to_text", "dtd_to_text"]


def decl_to_text(decl: ElementDecl) -> str:
    """Render one element type declaration in DTD syntax."""
    content = decl.content
    if isinstance(content, EmptyContent):
        body = "EMPTY"
    elif isinstance(content, AnyContent):
        body = "ANY"
    elif isinstance(content, MixedContent):
        if content.names:
            alternatives = " | ".join(("#PCDATA",) + content.names)
            body = f"({alternatives})*"
        else:
            body = "(#PCDATA)"
    elif isinstance(content, ChildrenContent):
        body = ast.to_text(content.model)
        if not body.startswith("("):
            # Top-level children content must be parenthesized (XML [47]).
            body = f"({body})"
    else:  # pragma: no cover - exhaustive over ContentSpec
        raise TypeError(f"unexpected content spec {content!r}")
    return f"<!ELEMENT {decl.name} {body}>"


def dtd_to_text(dtd: DTD) -> str:
    """Render all declarations of *dtd*, one per line, in declaration order."""
    return "\n".join(decl_to_text(decl) for decl in dtd) + "\n"
