"""Seeded random DTD generation.

Benchmark E3 sweeps the paper's ``k`` (total element occurrences across all
content models) and the classification experiment needs populations of each
Definition 6-8 class, so the generator controls:

* the element count and reference fan-out (driving ``k``),
* the recursion style: ``"none"`` builds a DAG of references (elements only
  reference later-declared ones), ``"weak"`` adds self/backward references
  *inside* star-groups (mixed content), ``"strong"`` adds a backward
  reference at a non-star-group position.

Productivity/usability hold by construction: the reference DAG bottoms out
in ``EMPTY``/``(#PCDATA)`` leaves, recursion is only ever *added* as an
extra alternative, and every element is reachable from the root.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Literal

from repro.dtd.ast import Choice, ContentNode, Name, Opt, Plus, Seq, Star
from repro.dtd.model import (
    ChildrenContent,
    DTD,
    ElementDecl,
    EmptyContent,
    MixedContent,
)

__all__ = ["RandomDTDConfig", "random_dtd"]

RecursionStyle = Literal["none", "weak", "strong"]


@dataclass(frozen=True)
class RandomDTDConfig:
    """Knobs for :func:`random_dtd`.

    ``elements`` includes the root; ``fanout`` bounds how many distinct
    later elements one content model references (the main ``k`` driver);
    ``mixed_fraction``/``empty_fraction`` control leaf-ish declarations;
    ``recursion`` selects the Definition 6-8 class the result should land
    in (``"none"`` guarantees non-recursive; ``"weak"``/``"strong"`` make
    the corresponding class *likely by construction* and the tests assert
    it exactly).
    """

    elements: int = 10
    seed: int = 0
    fanout: int = 4
    mixed_fraction: float = 0.25
    empty_fraction: float = 0.15
    recursion: RecursionStyle = "none"
    name_prefix: str = "e"


def random_dtd(config: RandomDTDConfig) -> DTD:
    """Generate a DTD per *config* (deterministic for a given config)."""
    if config.elements < 2:
        raise ValueError("need at least 2 elements (root plus a leaf)")
    # Seed from a string: random.Random seeds strings via a stable hash,
    # unlike tuple hashing, which PYTHONHASHSEED randomizes per process.
    rng = random.Random(f"{config.seed}|{config.elements}|{config.recursion}")
    names = [f"{config.name_prefix}{index}" for index in range(config.elements)]
    decls: list[ElementDecl] = []
    for index, name in enumerate(names):
        later = names[index + 1 :]
        decls.append(ElementDecl(name, _content_for(rng, later, config)))
    decls = _ensure_reachable(decls, names)
    decls = _add_recursion(rng, decls, names, config)
    return DTD(
        decls,
        root=names[0],
        name=f"random-{config.recursion}-m{config.elements}-s{config.seed}",
    )


def _ensure_reachable(
    decls: list[ElementDecl], names: list[str]
) -> list[ElementDecl]:
    """Attach optional references from the root so every element is usable.

    All elements are productive by construction (the reference DAG bottoms
    out), so syntactic reachability from the root is exactly usability.
    Unreached elements are appended to the root content as ``name?`` items,
    which cannot break productivity or introduce recursion.
    """
    by_name = {decl.name: decl for decl in decls}
    reached = {names[0]}
    frontier = [names[0]]
    while frontier:
        current = by_name[frontier.pop()]
        targets = (
            current.content.names
            if isinstance(current.content, MixedContent)
            else current.referenced_names()
        )
        for target in targets:
            if target not in reached:
                reached.add(target)
                frontier.append(target)
    missing = [name for name in names if name not in reached]
    if not missing:
        return decls
    root = decls[0]
    extras = tuple(Opt(Name(name)) for name in missing)
    if isinstance(root.content, ChildrenContent):
        model: ContentNode = Seq((root.content.model,) + extras)
    elif isinstance(root.content, MixedContent):
        return [
            ElementDecl(
                root.name,
                MixedContent(
                    tuple(dict.fromkeys(root.content.names + tuple(missing)))
                ),
            )
        ] + decls[1:]
    else:  # EMPTY root: replace with an all-optional children model.
        model = Seq(extras)
    return [ElementDecl(root.name, ChildrenContent(model))] + decls[1:]


def _content_for(
    rng: random.Random, later: list[str], config: RandomDTDConfig
):
    """A content spec referencing only *later* elements (productive DAG)."""
    if not later or rng.random() < config.empty_fraction:
        return EmptyContent() if rng.random() < 0.5 else MixedContent(())
    if rng.random() < config.mixed_fraction:
        count = min(len(later), rng.randint(1, config.fanout))
        return MixedContent(tuple(rng.sample(later, count)))
    count = min(len(later), rng.randint(1, config.fanout))
    refs = rng.sample(later, count)
    return ChildrenContent(_random_regex(rng, refs))


def _random_regex(rng: random.Random, refs: list[str]) -> ContentNode:
    """A parser-shaped regex over *refs* (occurrences only on names/groups)."""
    leaves: list[ContentNode] = [_decorate(rng, Name(ref)) for ref in refs]
    while len(leaves) > 1:
        take = min(len(leaves), rng.randint(2, 3))
        group_items = tuple(leaves[:take])
        combiner = Choice if rng.random() < 0.4 else Seq
        combined: ContentNode = combiner(group_items)
        if rng.random() < 0.4:
            combined = _decorate_group(rng, combined)
        leaves = [combined] + leaves[take:]
    top = leaves[0]
    if isinstance(top, (Name, Star, Plus, Opt)):
        top = Seq((top,))
    return top


def _decorate(rng: random.Random, node: ContentNode) -> ContentNode:
    roll = rng.random()
    if roll < 0.2:
        return Opt(node)
    if roll < 0.35:
        return Star(node)
    if roll < 0.45:
        return Plus(node)
    return node


def _decorate_group(rng: random.Random, node: ContentNode) -> ContentNode:
    roll = rng.random()
    if roll < 0.4:
        return Star(node)
    if roll < 0.7:
        return Opt(node)
    return Plus(node)


def _add_recursion(
    rng: random.Random,
    decls: list[ElementDecl],
    names: list[str],
    config: RandomDTDConfig,
) -> list[ElementDecl]:
    if config.recursion == "none" or len(names) < 2:
        return decls
    target_index = rng.randrange(0, max(1, len(names) // 2))
    target = decls[target_index]
    if config.recursion == "weak":
        # Self-reference inside a star-group: mixed content mentioning the
        # element itself (the XHTML <b>/<i> pattern the paper cites).
        existing = (
            target.content.names
            if isinstance(target.content, MixedContent)
            else ()
        )
        members = tuple(dict.fromkeys(existing + (target.name,)))
        decls[target_index] = ElementDecl(target.name, MixedContent(members))
        return decls
    # Strong: a self-reference at a non-star-group position, kept productive
    # by making it one branch of a choice whose other branch is the original
    # content (or EMPTY-equivalent epsilon via Opt when original is EMPTY).
    original = target.content
    if isinstance(original, ChildrenContent):
        new_model: ContentNode = Choice((Name(target.name), original.model))
    else:
        new_model = Seq((Opt(Name(target.name)),))
    decls[target_index] = ElementDecl(target.name, ChildrenContent(new_model))
    return decls
