"""Recursive-descent parser for DTD element type declarations.

Grammar implemented (XML 1.0 productions [45]-[51], paper ref [2]):

.. code-block:: text

    dtd          ::= elementdecl*
    elementdecl  ::= '<!ELEMENT' Name contentspec '>'
    contentspec  ::= 'EMPTY' | 'ANY' | Mixed | children
    Mixed        ::= '(' '#PCDATA' ('|' Name)* ')' '*'?
    children     ::= (choice | seq) ('?' | '*' | '+')?
    cp           ::= (Name | choice | seq) ('?' | '*' | '+')?
    choice       ::= '(' cp ('|' cp)+ ')'
    seq          ::= '(' cp (',' cp)* ')'

Notes
-----
* Per the XML spec, ``Mixed`` with at least one element name requires the
  trailing ``*``; a bare ``(#PCDATA)`` does not.  We additionally accept
  ``(#PCDATA)*``, which is also legal.
* A parenthesized group with exactly one ``cp`` and no separator parses as a
  one-item :class:`~repro.dtd.ast.Seq`; the AST keeps it so that
  round-tripping and the paper's position counting stay faithful.
"""

from __future__ import annotations

from repro.dtd.ast import Choice, ContentNode, Name, Opt, Plus, Seq, Star
from repro.dtd.lexer import Token, TokenKind, tokenize_dtd
from repro.dtd.model import (
    AnyContent,
    ChildrenContent,
    ContentSpec,
    DTD,
    ElementDecl,
    EmptyContent,
    MixedContent,
)
from repro.errors import DTDSemanticError, DTDSyntaxError

__all__ = ["parse_dtd", "parse_content_spec"]


class _Parser:
    """Token-stream cursor with one-token lookahead."""

    def __init__(self, source: str) -> None:
        self._tokens = list(tokenize_dtd(source))
        self._index = 0

    @property
    def current(self) -> Token:
        return self._tokens[self._index]

    def advance(self) -> Token:
        token = self._tokens[self._index]
        if token.kind is not TokenKind.EOF:
            self._index += 1
        return token

    def expect(self, kind: TokenKind, what: str) -> Token:
        token = self.current
        if token.kind is not kind:
            raise DTDSyntaxError(
                f"expected {what}, found {token.text or 'end of input'!r}",
                token.offset,
            )
        return self.advance()

    # -- grammar ------------------------------------------------------------

    def parse_dtd(self) -> list[ElementDecl]:
        decls: list[ElementDecl] = []
        while self.current.kind is TokenKind.ELEMENT_OPEN:
            decls.append(self.parse_elementdecl())
        self.expect(TokenKind.EOF, "'<!ELEMENT' or end of input")
        return decls

    def parse_elementdecl(self) -> ElementDecl:
        self.expect(TokenKind.ELEMENT_OPEN, "'<!ELEMENT'")
        name = self.expect(TokenKind.NAME, "element type name").text
        content = self.parse_contentspec()
        self.expect(TokenKind.GT, "'>'")
        return ElementDecl(name, content)

    def parse_contentspec(self) -> ContentSpec:
        token = self.current
        if token.kind is TokenKind.NAME and token.text == "EMPTY":
            self.advance()
            return EmptyContent()
        if token.kind is TokenKind.NAME and token.text == "ANY":
            self.advance()
            return AnyContent()
        if token.kind is not TokenKind.LPAREN:
            raise DTDSyntaxError(
                f"expected content specification, found {token.text!r}",
                token.offset,
            )
        # Distinguish Mixed from children by one extra token of lookahead.
        if self._tokens[self._index + 1].kind is TokenKind.PCDATA:
            return self.parse_mixed()
        model = self.parse_cp()
        if not isinstance(model, (Seq, Choice, Star, Plus, Opt)):
            raise DTDSyntaxError(
                "children content must be a parenthesized group", token.offset
            )
        return ChildrenContent(model)

    def parse_mixed(self) -> MixedContent:
        open_token = self.expect(TokenKind.LPAREN, "'('")
        self.expect(TokenKind.PCDATA, "'#PCDATA'")
        names: list[str] = []
        while self.current.kind is TokenKind.PIPE:
            self.advance()
            names.append(self.expect(TokenKind.NAME, "element type name").text)
        self.expect(TokenKind.RPAREN, "')'")
        has_star = self.current.kind is TokenKind.STAR
        if has_star:
            self.advance()
        if names and not has_star:
            raise DTDSyntaxError(
                "mixed content with element names requires a trailing '*'",
                open_token.offset,
            )
        if len(names) != len(set(names)):
            raise DTDSemanticError(
                "duplicate element name in mixed content model"
            )
        return MixedContent(tuple(names))

    def parse_cp(self) -> ContentNode:
        token = self.current
        if token.kind is TokenKind.NAME:
            self.advance()
            node: ContentNode = Name(token.text)
        elif token.kind is TokenKind.LPAREN:
            node = self.parse_group()
        else:
            raise DTDSyntaxError(
                f"expected element name or '(', found {token.text!r}",
                token.offset,
            )
        return self._parse_occurrence(node)

    def _parse_occurrence(self, node: ContentNode) -> ContentNode:
        kind = self.current.kind
        if kind is TokenKind.QUESTION:
            self.advance()
            return Opt(node)
        if kind is TokenKind.STAR:
            self.advance()
            return Star(node)
        if kind is TokenKind.PLUS:
            self.advance()
            return Plus(node)
        return node

    def parse_group(self) -> ContentNode:
        self.expect(TokenKind.LPAREN, "'('")
        first = self.parse_cp()
        separator = self.current.kind
        items = [first]
        if separator is TokenKind.PIPE:
            while self.current.kind is TokenKind.PIPE:
                self.advance()
                items.append(self.parse_cp())
            self.expect(TokenKind.RPAREN, "')'")
            return Choice(tuple(items))
        while self.current.kind is TokenKind.COMMA:
            self.advance()
            items.append(self.parse_cp())
        self.expect(TokenKind.RPAREN, "')'")
        return Seq(tuple(items))


def parse_dtd(source: str, root: str | None = None, name: str = "dtd") -> DTD:
    """Parse DTD *source* text into a :class:`~repro.dtd.model.DTD`.

    Parameters
    ----------
    source:
        Text containing ``<!ELEMENT ...>`` declarations (``<!ATTLIST>``,
        ``<!ENTITY>``, ``<!NOTATION>`` declarations and comments are
        skipped).
    root:
        The designated root element type (the paper's ``r``).  Defaults to
        the first declared element, which matches every DTD in the paper.
    name:
        Optional label for the DTD (used in reports and benchmarks).

    Raises
    ------
    DTDSyntaxError
        On malformed declaration text.
    DTDSemanticError
        On duplicate declarations or references to undeclared elements.
    """
    decls = _Parser(source).parse_dtd()
    if not decls:
        raise DTDSemanticError("DTD contains no element type declarations")
    if root is None:
        root = decls[0].name
    return DTD(decls, root=root, name=name)


def parse_content_spec(source: str) -> ContentSpec:
    """Parse a bare content specification (handy in tests and doctests).

    >>> spec = parse_content_spec("(b?, (c | f), d)")
    >>> from repro.dtd.ast import to_text
    >>> to_text(spec.model)
    '(b?, (c | f), d)'
    """
    parser = _Parser(source)
    spec = parser.parse_contentspec()
    parser.expect(TokenKind.EOF, "end of input")
    return spec
