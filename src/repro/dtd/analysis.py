"""DTD analysis: productivity/usability, reachability, recursion classes.

This module implements the static analyses of Sections 3.3 and 4.1:

* **productivity / usability** — an element is *productive* when some finite
  valid subtree rooted at it exists, and *usable* (paper Section 3.3) when
  additionally it can occur in some valid document with the designated root.
  The paper assumes all elements usable; we compute the sets so the checkers
  stay exact without the assumption.
* **reachability graph** ``R_T`` (Definition 5) with its precomputed lookup
  table ``LT`` — both the paper's syntactic-occurrence edges and the refined
  *embed* edges (some word of the content model over completable symbols
  mentions the target), which coincide under the usability assumption.
* **recursion classification** (Definitions 6-8): recursive elements,
  PV-strong recursive elements (a self-derivation through non-star-group
  positions only), and the induced DTD classes *non-recursive*,
  *PV-weak recursive*, *PV-strong recursive*.

All results are aggregated in :class:`DTDAnalysis`, memoised per DTD via
:func:`analyze`.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from functools import lru_cache

from repro.dtd import ast
from repro.dtd.ast import Choice, Name, Seq
from repro.dtd.model import DTD, PCDATA
from repro.dtd.stargroups import FlatNode, StarGroup, flattened_content

__all__ = [
    "DTDClass",
    "DTDAnalysis",
    "analyze",
]


class DTDClass(Enum):
    """The three DTD classes of Section 4.3 (Definitions 6-8)."""

    NON_RECURSIVE = "non-recursive"
    PV_WEAK_RECURSIVE = "PV-weak recursive"
    PV_STRONG_RECURSIVE = "PV-strong recursive"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


def _compute_productive(dtd: DTD) -> frozenset[str]:
    """Least fixpoint of "content model admits a word over productive symbols"."""
    productive: set[str] = set()
    changed = True
    while changed:
        changed = False
        for decl in dtd:
            if decl.name in productive:
                continue
            regex = decl.content.regex(dtd)
            if regex is None or ast.language_nullable(regex, productive.__contains__):
                productive.add(decl.name)
                changed = True
    return frozenset(productive)


def _flat_nullable(node: FlatNode, productive: frozenset[str]) -> bool:
    """Nullability over flattened models (star-groups always erase)."""
    if isinstance(node, StarGroup):
        return True
    if isinstance(node, Name):
        return node.name in productive
    if isinstance(node, Seq):
        return all(_flat_nullable(item, productive) for item in node.items)
    if isinstance(node, Choice):
        return any(_flat_nullable(item, productive) for item in node.items)
    raise TypeError(f"unexpected flat node {node!r}")


def _flat_can_mention(
    node: FlatNode, target: str, productive: frozenset[str]
) -> bool:
    """Like :func:`repro.dtd.ast.can_mention`, but over flattened models and
    *excluding* mentions that occur inside star-groups.

    This is the edge predicate of the *strong* reachability graph used for
    Definition 7: a PV-strong self-derivation must avoid star-group
    positions.
    """
    if isinstance(node, StarGroup):
        return False
    if isinstance(node, Name):
        return node.name == target
    if isinstance(node, Choice):
        return any(_flat_can_mention(item, target, productive) for item in node.items)
    if isinstance(node, Seq):
        for index, item in enumerate(node.items):
            if not _flat_can_mention(item, target, productive):
                continue
            if all(
                _flat_nullable(other, productive)
                for position, other in enumerate(node.items)
                if position != index
            ):
                return True
        return False
    raise TypeError(f"unexpected flat node {node!r}")


def _closure(direct: dict[str, frozenset[str]]) -> dict[str, frozenset[str]]:
    """Transitive closure of *direct* (paths of length >= 1).

    Intermediate nodes of an insertion chain ``y -> z -> ... -> t`` need no
    productivity of their own: each inserted intermediate receives real
    content (the rest of the chain), and the requirement that its *sibling*
    positions be silently completable is already encoded in the edge
    predicate (``can_mention`` with productive-nullability).  The closure
    therefore expands through every node.
    """
    closure: dict[str, frozenset[str]] = {}
    for start in direct:
        reached: set[str] = set()
        frontier: list[str] = [start]
        seen_expanded: set[str] = set()
        while frontier:
            node = frontier.pop()
            for target in direct.get(node, frozenset()):
                if target not in reached:
                    reached.add(target)
                    if target not in seen_expanded:
                        seen_expanded.add(target)
                        frontier.append(target)
        closure[start] = frozenset(reached)
    return closure


@dataclass(frozen=True)
class DTDAnalysis:
    """All per-DTD static analysis results, computed once by :func:`analyze`.

    Attributes
    ----------
    dtd:
        The analysed DTD.
    productive:
        Elements admitting some finite valid subtree.
    usable:
        Productive elements that occur in some valid document rooted at
        ``dtd.root`` (paper Section 3.3's usable elements).
    direct:
        Syntactic-occurrence edges of Definition 5's ``R_T`` — ``direct[x]``
        is every element name (or :data:`~repro.dtd.model.PCDATA`) occurring
        in ``r_x``.
    embed_direct:
        Refined edges: ``y in embed_direct[x]`` iff some word of ``r_x``
        over completable symbols mentions ``y``.  Equal to ``direct`` when
        every element is usable.
    reach:
        Paper lookup table ``LT``: transitive closure of ``direct``
        (length >= 1 paths), exactly Definition 5.
    embed_reach:
        Transitive closure of ``embed_direct`` — the table the exact
        checkers consult ("token ``t`` can be wrapped under a missing
        ``x``").
    strong_direct / strong_reach:
        Same, restricted to mentions *outside* star-groups (Definition 7).
    recursive_elements / strong_recursive_elements:
        Definitions 6 and 7 element sets.
    dtd_class:
        The Definition 6-8 classification of the whole DTD.
    """

    dtd: DTD
    productive: frozenset[str]
    usable: frozenset[str]
    direct: dict[str, frozenset[str]]
    embed_direct: dict[str, frozenset[str]]
    reach: dict[str, frozenset[str]]
    embed_reach: dict[str, frozenset[str]]
    strong_direct: dict[str, frozenset[str]]
    strong_reach: dict[str, frozenset[str]]
    recursive_elements: frozenset[str]
    strong_recursive_elements: frozenset[str]
    dtd_class: DTDClass

    # -- lookup-table API (the paper's ``LT``) -----------------------------

    def lookup(self, source: str, target: str) -> bool:
        """Paper ``LT(t1, t2)``: is *target* reachable from *source* in ``R_T``?

        Paths have length >= 1, so ``lookup(x, x)`` is true exactly for
        recursive elements (cf. Example 4's remark that ``b`` is not in the
        lookup table of ``b``).
        """
        return target in self.reach.get(source, frozenset())

    def can_embed(self, source: str, target: str) -> bool:
        """Exact variant of :meth:`lookup` used by the robust checkers.

        True iff a token *target* (an element tag, or
        :data:`~repro.dtd.model.PCDATA` for character data) can appear
        somewhere strictly inside an *inserted* ``source`` element, with
        everything else completable.
        """
        return target in self.embed_reach.get(source, frozenset())

    def is_recursive(self, name: str) -> bool:
        """Definition 6: ``X =>* X`` in ``G'``."""
        return name in self.recursive_elements

    def is_strong_recursive(self, name: str) -> bool:
        """Definition 7: a self-derivation through non-star-group positions."""
        return name in self.strong_recursive_elements

    @property
    def all_usable(self) -> bool:
        """The paper's standing assumption (Section 3.3)."""
        return len(self.usable) == len(self.dtd)

    @property
    def unusable(self) -> frozenset[str]:
        return frozenset(self.dtd.element_names()) - self.usable


def _build_embed_direct(
    dtd: DTD, productive: frozenset[str]
) -> dict[str, frozenset[str]]:
    nullable = productive.__contains__
    embed: dict[str, frozenset[str]] = {}
    for decl in dtd:
        regex = decl.content.regex(dtd)
        if regex is None:
            embed[decl.name] = frozenset()
            continue
        targets: set[str] = set()
        for candidate in ast.element_names(regex):
            if ast.can_mention(regex, candidate, nullable):
                targets.add(candidate)
        if ast.mentions_pcdata(regex) and ast.can_mention(regex, None, nullable):
            targets.add(PCDATA)
        embed[decl.name] = frozenset(targets)
    return embed


def _build_strong_direct(
    dtd: DTD, productive: frozenset[str]
) -> dict[str, frozenset[str]]:
    strong: dict[str, frozenset[str]] = {}
    for decl in dtd:
        flat = flattened_content(dtd, decl.name)
        if flat is None:
            strong[decl.name] = frozenset()
            continue
        candidates = {
            node.name
            for node in _iter_flat(flat)
            if isinstance(node, Name)
        }
        strong[decl.name] = frozenset(
            target
            for target in candidates
            if _flat_can_mention(flat, target, productive)
        )
    return strong


def _iter_flat(node: FlatNode):
    stack: list[FlatNode] = [node]
    while stack:
        current = stack.pop()
        yield current
        if isinstance(current, (Seq, Choice)):
            stack.extend(current.items)  # type: ignore[arg-type]


@lru_cache(maxsize=256)
def analyze(dtd: DTD) -> DTDAnalysis:
    """Compute (and memoise) the full static analysis of *dtd*."""
    productive = _compute_productive(dtd)

    direct: dict[str, frozenset[str]] = {}
    for decl in dtd:
        targets = set(dtd.referenced_names(decl.name))
        if dtd.mentions_pcdata(decl.name):
            targets.add(PCDATA)
        direct[decl.name] = frozenset(targets)

    embed_direct = _build_embed_direct(dtd, productive)
    strong_direct = _build_strong_direct(dtd, productive)

    reach = _closure(direct)
    embed_reach = _closure(embed_direct)
    strong_reach = _closure(strong_direct)

    recursive = frozenset(
        name for name in dtd.element_names() if name in embed_reach[name]
    )
    strong_recursive = frozenset(
        name for name in dtd.element_names() if name in strong_reach[name]
    )

    if strong_recursive:
        dtd_class = DTDClass.PV_STRONG_RECURSIVE
    elif recursive:
        dtd_class = DTDClass.PV_WEAK_RECURSIVE
    else:
        dtd_class = DTDClass.NON_RECURSIVE

    # Usable = productive and occurring in some valid document with the
    # designated root: the root plus everything embed-reachable from it,
    # filtered to productive elements (an unproductive element can be a
    # reachability *endpoint* but never completes into a valid document).
    usable: set[str] = set()
    if dtd.root in productive:
        usable.add(dtd.root)
        for target in embed_reach.get(dtd.root, frozenset()):
            if target != PCDATA and target in productive:
                usable.add(target)

    return DTDAnalysis(
        dtd=dtd,
        productive=productive,
        usable=frozenset(usable),
        direct=direct,
        embed_direct=embed_direct,
        reach=reach,
        embed_reach=embed_reach,
        strong_direct=strong_direct,
        strong_reach=strong_reach,
        recursive_elements=recursive,
        strong_recursive_elements=strong_recursive,
        dtd_class=dtd_class,
    )
