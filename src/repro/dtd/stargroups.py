"""Star-groups (Definition 4) and the Proposition 1 flattening.

After Corollary 3.1 normalization a content model contains only ``Seq``,
``Choice``, ``Star``, ``Name`` and ``PCData`` nodes.  Definition 4 singles
out the *maximal* starred subexpressions — the **star-groups**: every ``e*``
is either a star-group or nested inside one, and no star-group contains
another.  Proposition 1 then licenses replacing each star-group by
``(a1, ..., an)*`` over its member element set: the PV language only depends
on *which* symbols a star-group contains, not on its internal expression.

The flattened form is the input of the paper's DAG model (Section 4.2):
a tree over ``Seq``/``Choice`` whose leaves are either simple ``Name``
occurrences or opaque :class:`StarGroup` leaves.  Because all ``Star``
operators are swallowed by the groups, the flattened model is star-free and
its position graph (the paper's ``DAG_x``) is acyclic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.dtd.ast import (
    Choice,
    ContentNode,
    Name,
    PCData,
    Plus,
    Opt,
    Seq,
    Star,
    element_names,
    mentions_pcdata,
)
from repro.dtd.model import DTD, PCDATA
from repro.dtd.normalize import normalized_content

__all__ = ["StarGroup", "FlatNode", "find_star_groups", "flatten", "flattened_content"]


@dataclass(frozen=True)
class StarGroup:
    """A flattened star-group leaf: the set of symbols it may repeat.

    ``members`` contains element names, plus the :data:`~repro.dtd.model.PCDATA`
    sentinel when ``#PCDATA`` occurred inside the group (mixed content).
    The paper labels star-group DAG nodes with exactly this list.
    """

    members: frozenset[str]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        listed = ", ".join(sorted(self.members))
        return f"StarGroup({{{listed}}})"


#: A flattened content model node: plain ``Seq``/``Choice`` structure over
#: ``Name`` occurrences and :class:`StarGroup` leaves.
FlatNode = Union[Seq, Choice, Name, StarGroup]


def find_star_groups(node: ContentNode) -> list[ContentNode]:
    """Return the star-groups of a *normalized* content model, in document order.

    Star-groups are the outermost ``Star`` nodes (Definition 4): every
    ``Star`` either appears in the result or is a descendant of one that
    does.

    >>> from repro.dtd.parser import parse_content_spec
    >>> from repro.dtd.normalize import normalize_node
    >>> from repro.dtd.ast import to_text
    >>> model = normalize_node(parse_content_spec("(a, (b* | (c, d*, e)*))").model)
    >>> [to_text(group) for group in find_star_groups(model)]
    ['b*', '(c, d*, e)*']
    """
    groups: list[ContentNode] = []

    def visit(current: ContentNode) -> None:
        if isinstance(current, Star):
            groups.append(current)
            return  # nested stars are subexpressions of this group
        if isinstance(current, (Seq, Choice)):
            for item in current.items:
                visit(item)
        elif isinstance(current, (Plus, Opt)):  # pragma: no cover - normalized input
            visit(current.item)

    visit(node)
    return groups


def _group_members(star: Star) -> frozenset[str]:
    members: set[str] = set(element_names(star.item))
    if mentions_pcdata(star.item):
        members.add(PCDATA)
    return frozenset(members)


def flatten(node: ContentNode) -> FlatNode:
    """Apply the Proposition 1 flattening to a *normalized* content model.

    Each outermost ``Star`` becomes a :class:`StarGroup` over its member
    symbols; ``Seq``/``Choice`` structure outside star-groups is preserved;
    ``Name`` leaves pass through.  ``PCData`` cannot occur outside a star
    after normalization (XML only allows ``#PCDATA`` in mixed content, which
    is starred), so encountering one is an internal error.
    """
    if isinstance(node, Star):
        return StarGroup(_group_members(node))
    if isinstance(node, Name):
        return node
    if isinstance(node, Seq):
        return Seq(tuple(flatten(item) for item in node.items))  # type: ignore[arg-type]
    if isinstance(node, Choice):
        return Choice(tuple(flatten(item) for item in node.items))  # type: ignore[arg-type]
    if isinstance(node, PCData):
        raise AssertionError(
            "#PCDATA outside a star-group; content model was not normalized mixed content"
        )
    raise AssertionError(f"non-normalized node in flatten: {node!r}")


def flattened_content(dtd: DTD, name: str) -> FlatNode | None:
    """Normalize then flatten the content model of *name* (``None`` for EMPTY)."""
    normalized = normalized_content(dtd, name)
    if normalized is None:
        return None
    return flatten(normalized)
