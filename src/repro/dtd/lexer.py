"""Tokenizer for DTD (internal-subset style) text.

Supports exactly the subset of DTD syntax that matters for potential
validity: ``<!ELEMENT ...>`` declarations and their content-model
punctuation.  ``<!ATTLIST>``, ``<!ENTITY>`` and ``<!NOTATION>`` declarations
are recognized and skipped — the paper's footnote 3 notes that attribute
declarations do not affect the problem — and comments are ignored.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto
from typing import Iterator

from repro.errors import DTDSyntaxError

__all__ = ["TokenKind", "Token", "tokenize_dtd"]

_NAME_START = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_:")
_NAME_CHARS = _NAME_START | set("0123456789.-")
_WHITESPACE = set(" \t\r\n")


class TokenKind(Enum):
    """Lexical categories of DTD tokens."""

    ELEMENT_OPEN = auto()  # '<!ELEMENT'
    NAME = auto()          # element type name or EMPTY/ANY keyword
    PCDATA = auto()        # '#PCDATA'
    LPAREN = auto()
    RPAREN = auto()
    PIPE = auto()
    COMMA = auto()
    QUESTION = auto()
    STAR = auto()
    PLUS = auto()
    GT = auto()            # '>' closing a declaration
    EOF = auto()


@dataclass(frozen=True)
class Token:
    """A single DTD token with its source offset (for error reporting)."""

    kind: TokenKind
    text: str
    offset: int


_PUNCT = {
    "(": TokenKind.LPAREN,
    ")": TokenKind.RPAREN,
    "|": TokenKind.PIPE,
    ",": TokenKind.COMMA,
    "?": TokenKind.QUESTION,
    "*": TokenKind.STAR,
    "+": TokenKind.PLUS,
    ">": TokenKind.GT,
}

_SKIPPED_DECLS = ("<!ATTLIST", "<!ENTITY", "<!NOTATION")


def _scan_name(source: str, start: int) -> int:
    """Return the end offset of the name starting at *start*."""
    end = start + 1
    while end < len(source) and source[end] in _NAME_CHARS:
        end += 1
    return end


def tokenize_dtd(source: str) -> Iterator[Token]:
    """Yield the tokens of *source*, ending with a single ``EOF`` token.

    Raises :class:`~repro.errors.DTDSyntaxError` on characters that cannot
    start any token, unterminated comments, or unterminated skipped
    declarations.
    """
    position = 0
    length = len(source)
    while position < length:
        char = source[position]
        if char in _WHITESPACE:
            position += 1
            continue
        if source.startswith("<!--", position):
            end = source.find("-->", position + 4)
            if end < 0:
                raise DTDSyntaxError("unterminated comment", position)
            position = end + 3
            continue
        if source.startswith("<?", position):
            end = source.find("?>", position + 2)
            if end < 0:
                raise DTDSyntaxError("unterminated processing instruction", position)
            position = end + 2
            continue
        skipped = next(
            (kw for kw in _SKIPPED_DECLS if source.startswith(kw, position)), None
        )
        if skipped is not None:
            end = source.find(">", position)
            if end < 0:
                raise DTDSyntaxError(f"unterminated {skipped} declaration", position)
            position = end + 1
            continue
        if source.startswith("<!ELEMENT", position):
            yield Token(TokenKind.ELEMENT_OPEN, "<!ELEMENT", position)
            position += len("<!ELEMENT")
            continue
        if source.startswith("#PCDATA", position):
            yield Token(TokenKind.PCDATA, "#PCDATA", position)
            position += len("#PCDATA")
            continue
        if char in _PUNCT:
            yield Token(_PUNCT[char], char, position)
            position += 1
            continue
        if char in _NAME_START:
            end = _scan_name(source, position)
            yield Token(TokenKind.NAME, source[position:end], position)
            position = end
            continue
        raise DTDSyntaxError(f"unexpected character {char!r}", position)
    yield Token(TokenKind.EOF, "", length)
