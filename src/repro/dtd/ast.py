"""Content-model abstract syntax trees.

A DTD Element Type Declaration right-hand side (the paper's ``r_x``) is a
regular expression over element names and ``#PCDATA``.  This module defines
the immutable AST for those regular expressions together with the structural
algorithms the rest of the library builds on:

* word-existence predicates (:func:`language_nullable`, :func:`can_mention`)
  used for productivity/usability analysis (paper Section 3.3) and for the
  embed-reachability refinement of the reachability graph (Definition 5),
* the minimal-witness dynamic program (:func:`min_cost_word`) used to
  synthesize the cheapest valid instance of an element (Figure 3 completions),
* generic traversal helpers shared by the normalizer, the star-group
  analysis, the Glushkov construction and the grammar builders.

All nodes are frozen dataclasses: structural equality and hashing come for
free, and sub-expressions can be shared safely.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, Union

__all__ = [
    "ContentNode",
    "PCData",
    "Name",
    "Seq",
    "Choice",
    "Star",
    "Plus",
    "Opt",
    "children",
    "walk",
    "element_names",
    "mentions_pcdata",
    "language_nullable",
    "can_mention",
    "min_cost_word",
    "node_size",
    "to_text",
]


@dataclass(frozen=True)
class PCData:
    """An occurrence of ``#PCDATA`` in a content model."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "PCData()"


@dataclass(frozen=True)
class Name:
    """A reference to an element type by name (the paper's ``y`` in ``r_x``)."""

    name: str

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Name({self.name!r})"


@dataclass(frozen=True)
class Seq:
    """A comma sequence ``(e1, e2, ..., en)``; requires ``len(items) >= 1``."""

    items: tuple["ContentNode", ...]

    def __post_init__(self) -> None:
        if not self.items:
            raise ValueError("Seq requires at least one item")


@dataclass(frozen=True)
class Choice:
    """An alternation ``(e1 | e2 | ... | en)``; requires ``len(items) >= 1``."""

    items: tuple["ContentNode", ...]

    def __post_init__(self) -> None:
        if not self.items:
            raise ValueError("Choice requires at least one item")


@dataclass(frozen=True)
class Star:
    """Kleene repetition ``e*`` (zero or more)."""

    item: "ContentNode"


@dataclass(frozen=True)
class Plus:
    """Positive repetition ``e+`` (one or more)."""

    item: "ContentNode"


@dataclass(frozen=True)
class Opt:
    """Optionality ``e?`` (zero or one)."""

    item: "ContentNode"


ContentNode = Union[PCData, Name, Seq, Choice, Star, Plus, Opt]


def children(node: ContentNode) -> tuple[ContentNode, ...]:
    """Return the immediate sub-expressions of *node* (empty for leaves)."""
    if isinstance(node, (Seq, Choice)):
        return node.items
    if isinstance(node, (Star, Plus, Opt)):
        return (node.item,)
    return ()


def walk(node: ContentNode) -> Iterator[ContentNode]:
    """Yield *node* and all of its sub-expressions in preorder."""
    stack: list[ContentNode] = [node]
    while stack:
        current = stack.pop()
        yield current
        stack.extend(reversed(children(current)))


def element_names(node: ContentNode) -> frozenset[str]:
    """Return the set of element names mentioned anywhere in *node*."""
    return frozenset(n.name for n in walk(node) if isinstance(n, Name))


def mentions_pcdata(node: ContentNode) -> bool:
    """Return ``True`` if ``#PCDATA`` occurs anywhere in *node*."""
    return any(isinstance(n, PCData) for n in walk(node))


def language_nullable(
    node: ContentNode,
    name_nullable: Callable[[str], bool],
) -> bool:
    """Decide whether ``L(node)`` contains a word made only of "nullable" symbols.

    *name_nullable(y)* says whether symbol ``y`` counts as erasable for the
    purpose at hand.  Two standing uses:

    * productivity analysis — ``name_nullable = productive`` decides whether
      the content model admits *some* word over productive element types
      (``#PCDATA`` always counts: character data is always realizable);
    * potential-validity skip analysis — ``name_nullable(y)`` = "a complete
      valid subtree for ``y`` can be inserted", which is the same predicate.

    The recursion is purely structural, so callers handle fixpoints (the
    mutual recursion through element declarations) themselves.
    """
    if isinstance(node, PCData):
        return True
    if isinstance(node, Name):
        return name_nullable(node.name)
    if isinstance(node, Seq):
        return all(language_nullable(item, name_nullable) for item in node.items)
    if isinstance(node, Choice):
        return any(language_nullable(item, name_nullable) for item in node.items)
    if isinstance(node, (Star, Opt)):
        return True
    if isinstance(node, Plus):
        return language_nullable(node.item, name_nullable)
    raise TypeError(f"unexpected content node {node!r}")


def can_mention(
    node: ContentNode,
    target: str | None,
    name_nullable: Callable[[str], bool],
) -> bool:
    """Decide whether some word of ``L(node)`` over completable symbols mentions *target*.

    *target* is an element name, or ``None`` to ask about ``#PCDATA``.  A
    word "mentions" the target when it contains the target symbol itself and
    every *other* symbol of the word satisfies *name_nullable* (i.e. the
    rest of the word can be completed into valid subtrees).

    This is the edge predicate of the *embed-reachability* graph: under the
    paper's standing assumption that every element is usable it coincides
    with plain syntactic occurrence (Definition 5's ``R_T``), but it stays
    correct for DTDs with unusable element types.
    """
    if isinstance(node, PCData):
        return target is None
    if isinstance(node, Name):
        return target is not None and node.name == target
    if isinstance(node, Choice):
        return any(can_mention(item, target, name_nullable) for item in node.items)
    if isinstance(node, Seq):
        for index, item in enumerate(node.items):
            if not can_mention(item, target, name_nullable):
                continue
            others_ok = all(
                language_nullable(other, name_nullable)
                for position, other in enumerate(node.items)
                if position != index
            )
            if others_ok:
                return True
        return False
    if isinstance(node, (Star, Plus, Opt)):
        # One iteration carries the mention; Star/Opt need nothing else and
        # Plus is satisfied by that same single iteration.
        return can_mention(node.item, target, name_nullable)
    raise TypeError(f"unexpected content node {node!r}")


def min_cost_word(
    node: ContentNode,
    name_cost: Callable[[str], float],
) -> float:
    """Return the minimum total cost of a word in ``L(node)``.

    *name_cost(y)* is the cost of symbol ``y`` (``float('inf')`` when ``y``
    cannot be completed at all); ``#PCDATA`` costs 0 because an empty text
    node satisfies it.  Used by the minimal-witness synthesizer: the cost of
    an element is ``1 +`` the min-cost word of its content model, computed
    to fixpoint over the whole DTD.
    """
    if isinstance(node, PCData):
        return 0.0
    if isinstance(node, Name):
        return name_cost(node.name)
    if isinstance(node, Seq):
        return sum(min_cost_word(item, name_cost) for item in node.items)
    if isinstance(node, Choice):
        return min(min_cost_word(item, name_cost) for item in node.items)
    if isinstance(node, (Star, Opt)):
        return 0.0
    if isinstance(node, Plus):
        return min_cost_word(node.item, name_cost)
    raise TypeError(f"unexpected content node {node!r}")


def node_size(node: ContentNode) -> int:
    """Return the number of AST nodes in *node* (the paper's ``k`` counts leaves)."""
    return sum(1 for _ in walk(node))


def _needs_parens(node: ContentNode) -> bool:
    return isinstance(node, (Seq, Choice))


def to_text(node: ContentNode) -> str:
    """Render *node* in DTD syntax (canonical spacing, minimal parentheses)."""
    if isinstance(node, PCData):
        return "#PCDATA"
    if isinstance(node, Name):
        return node.name
    if isinstance(node, Seq):
        return "(" + ", ".join(to_text(item) for item in node.items) + ")"
    if isinstance(node, Choice):
        return "(" + " | ".join(to_text(item) for item in node.items) + ")"
    if isinstance(node, (Star, Plus, Opt)):
        suffix = {"Star": "*", "Plus": "+", "Opt": "?"}[type(node).__name__]
        inner = to_text(node.item)
        if not _needs_parens(node.item) and not isinstance(node.item, (Star, Plus, Opt)):
            inner = "(" + inner + ")" if isinstance(node.item, PCData) else inner
        return inner + suffix
    raise TypeError(f"unexpected content node {node!r}")


def seq(*items: ContentNode) -> ContentNode:
    """Convenience constructor: a :class:`Seq`, collapsing the 1-item case."""
    if len(items) == 1:
        return items[0]
    return Seq(tuple(items))


def choice(*items: ContentNode) -> ContentNode:
    """Convenience constructor: a :class:`Choice`, collapsing the 1-item case."""
    if len(items) == 1:
        return items[0]
    return Choice(tuple(items))
