"""Plain context-free grammars.

Symbols are strings.  A symbol is a nonterminal iff it appears in the
grammar's ``nonterminals`` set; every other symbol occurring in a production
body is a terminal.  The library's conventions keep the two disjoint by
construction (nonterminals carry prefixes like ``N:``/``H:``/``C:`` that
never collide with tag terminals ``<x>``/``</x>``, element-name tokens, or
the ``#PCDATA`` sigma sentinel).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.errors import GrammarError

__all__ = ["Production", "Grammar"]


@dataclass(frozen=True)
class Production:
    """A production ``head -> body`` (empty body = epsilon production)."""

    head: str
    body: tuple[str, ...]

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        rhs = " ".join(self.body) if self.body else "ε"
        return f"{self.head} -> {rhs}"


class Grammar:
    """An immutable CFG with precomputed per-head indices and nullable set."""

    __slots__ = (
        "start",
        "nonterminals",
        "productions",
        "_by_head",
        "_nullable",
    )

    def __init__(
        self,
        start: str,
        productions: Iterable[Production | tuple[str, Sequence[str]]],
    ) -> None:
        normalized: list[Production] = []
        for production in productions:
            if isinstance(production, Production):
                normalized.append(production)
            else:
                head, body = production
                normalized.append(Production(head, tuple(body)))
        if not normalized:
            raise GrammarError("grammar has no productions")
        self.productions: tuple[Production, ...] = tuple(normalized)
        self.nonterminals: frozenset[str] = frozenset(
            production.head for production in self.productions
        )
        if start not in self.nonterminals:
            raise GrammarError(f"start symbol {start!r} has no productions")
        self.start = start
        by_head: dict[str, list[Production]] = {}
        for production in self.productions:
            by_head.setdefault(production.head, []).append(production)
        self._by_head: dict[str, tuple[Production, ...]] = {
            head: tuple(rules) for head, rules in by_head.items()
        }
        self._nullable = self._compute_nullable()

    def alternatives(self, head: str) -> tuple[Production, ...]:
        """All productions with the given *head*."""
        return self._by_head.get(head, ())

    def is_nonterminal(self, symbol: str) -> bool:
        return symbol in self.nonterminals

    def is_nullable(self, symbol: str) -> bool:
        """True iff *symbol* is a nonterminal deriving the empty string."""
        return symbol in self._nullable

    @property
    def nullable(self) -> frozenset[str]:
        """The set of nullable nonterminals (Theorem 3 checks this covers all)."""
        return self._nullable

    def terminals(self) -> frozenset[str]:
        """All terminal symbols occurring in production bodies."""
        symbols: set[str] = set()
        for production in self.productions:
            for symbol in production.body:
                if symbol not in self.nonterminals:
                    symbols.add(symbol)
        return frozenset(symbols)

    def _compute_nullable(self) -> frozenset[str]:
        nullable: set[str] = set()
        changed = True
        while changed:
            changed = False
            for production in self.productions:
                if production.head in nullable:
                    continue
                if all(
                    symbol in nullable for symbol in production.body
                ):  # vacuously true for epsilon bodies
                    nullable.add(production.head)
                    changed = True
        return frozenset(nullable)

    def __len__(self) -> int:
        return len(self.productions)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Grammar(start={self.start!r}, nonterminals={len(self.nonterminals)}, "
            f"productions={len(self.productions)})"
        )
