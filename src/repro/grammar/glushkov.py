"""Glushkov position automata for content models.

The Glushkov (position) construction turns a regular expression into an
NFA whose states are the expression's symbol *occurrences* (positions).
Two uses in this library:

* the **standard validator** builds the automaton of each element's
  *original* content model and simulates it over child labels — this
  decides ``D(T, r)`` membership per node;
* the **Section 4.2 DAG model** is exactly the position graph of the
  *normalized, star-group-flattened* content model: since flattening
  removes every ``*`` (star-groups become single leaf positions), the
  ``follow`` relation is acyclic there — the paper's ``DAG_x``.

Leaves may be :class:`~repro.dtd.ast.Name`, :class:`~repro.dtd.ast.PCData`
or :class:`~repro.dtd.stargroups.StarGroup`; the automaton labels positions
with the element name, the :data:`~repro.dtd.model.PCDATA` sentinel, or the
star-group member set respectively.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dtd.ast import Choice, Name, Opt, PCData, Plus, Seq, Star
from repro.dtd.model import PCDATA
from repro.dtd.stargroups import StarGroup

__all__ = ["Position", "GlushkovAutomaton", "build_glushkov"]


@dataclass(frozen=True)
class Position:
    """One symbol occurrence in a content model.

    Attributes
    ----------
    index:
        Dense identifier (0-based, document order of the occurrence).
    label:
        The element name, :data:`~repro.dtd.model.PCDATA` for a ``#PCDATA``
        occurrence, or ``None`` for a star-group position.
    group:
        For star-group positions, the member symbol set (element names and
        possibly :data:`~repro.dtd.model.PCDATA`); ``None`` otherwise.
    """

    index: int
    label: str | None
    group: frozenset[str] | None = None

    @property
    def is_group(self) -> bool:
        return self.group is not None

    def matches_directly(self, symbol: str) -> bool:
        """True iff a token *symbol* is matched by this position label.

        For simple positions this is label equality (a ``#PCDATA`` position
        matches a sigma token because both use the same sentinel).  For
        star-group positions it is membership in the group.
        """
        if self.group is not None:
            return symbol in self.group
        return symbol == self.label


@dataclass(frozen=True)
class GlushkovAutomaton:
    """first/follow/last sets over content-model positions."""

    positions: tuple[Position, ...]
    first: frozenset[int]
    last: frozenset[int]
    follow: dict[int, frozenset[int]]
    nullable: bool

    def position(self, index: int) -> Position:
        return self.positions[index]

    @property
    def size(self) -> int:
        return len(self.positions)


class _Builder:
    def __init__(self) -> None:
        self.positions: list[Position] = []
        self.follow: dict[int, set[int]] = {}

    def make_position(self, node) -> int:
        index = len(self.positions)
        if isinstance(node, Name):
            position = Position(index, node.name)
        elif isinstance(node, PCData):
            position = Position(index, PCDATA)
        elif isinstance(node, StarGroup):
            position = Position(index, None, group=node.members)
        else:  # pragma: no cover - callers dispatch on leaf types
            raise TypeError(f"not a leaf node: {node!r}")
        self.positions.append(position)
        self.follow[index] = set()
        return index

    def connect(self, sources: frozenset[int], targets: frozenset[int]) -> None:
        for source in sources:
            self.follow[source].update(targets)

    def build(self, node) -> tuple[bool, frozenset[int], frozenset[int]]:
        """Return (nullable, first, last) of *node*, accumulating follow."""
        if isinstance(node, (Name, PCData, StarGroup)):
            index = self.make_position(node)
            singleton = frozenset((index,))
            return False, singleton, singleton
        if isinstance(node, Seq):
            nullable = True
            first: set[int] = set()
            last: set[int] = set()
            for item in node.items:
                item_nullable, item_first, item_last = self.build(item)
                self.connect(frozenset(last), item_first)
                if nullable:
                    first |= item_first
                if item_nullable:
                    last |= item_last
                else:
                    last = set(item_last)
                nullable = nullable and item_nullable
            return nullable, frozenset(first), frozenset(last)
        if isinstance(node, Choice):
            nullable = False
            first = set()
            last = set()
            for item in node.items:
                item_nullable, item_first, item_last = self.build(item)
                nullable = nullable or item_nullable
                first |= item_first
                last |= item_last
            return nullable, frozenset(first), frozenset(last)
        if isinstance(node, (Star, Plus)):
            item_nullable, item_first, item_last = self.build(node.item)
            self.connect(item_last, item_first)
            nullable = True if isinstance(node, Star) else item_nullable
            return nullable, item_first, item_last
        if isinstance(node, Opt):
            _, item_first, item_last = self.build(node.item)
            return True, item_first, item_last
        raise TypeError(f"unexpected content node {node!r}")


def build_glushkov(node) -> GlushkovAutomaton:
    """Build the position automaton of a content model (or flattened model).

    >>> from repro.dtd.parser import parse_content_spec
    >>> auto = build_glushkov(parse_content_spec("(b?, (c | f), d)").model)
    >>> sorted(auto.positions[i].label for i in auto.first)
    ['b', 'c', 'f']
    >>> [auto.positions[i].label for i in sorted(auto.last)]
    ['d']
    """
    builder = _Builder()
    nullable, first, last = builder.build(node)
    return GlushkovAutomaton(
        positions=tuple(builder.positions),
        first=first,
        last=last,
        follow={index: frozenset(targets) for index, targets in builder.follow.items()},
        nullable=nullable,
    )
