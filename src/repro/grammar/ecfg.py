"""Extended context-free grammars (regular right-part grammars).

An ECFG rule maps a nonterminal to a *regular expression* over grammar
symbols (the paper's footnote 4: languages recognized by ECFGs are context
free).  We reuse the content-model AST of :mod:`repro.dtd.ast` for the
regex structure, with :class:`~repro.dtd.ast.Name` leaves naming grammar
symbols (terminal or nonterminal) and ``PCData`` unused at this layer.

:func:`ecfg_to_cfg` performs the standard expansion into a plain CFG by
introducing fresh auxiliary nonterminals for ``Choice``/``Star``/``Opt``/
``Plus`` nodes; the result feeds the Earley baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.dtd.ast import Choice, ContentNode, Name, Opt, PCData, Plus, Seq, Star
from repro.errors import GrammarError
from repro.grammar.cfg import Grammar, Production

__all__ = ["ECFG", "ecfg_to_cfg"]


@dataclass(frozen=True)
class ECFG:
    """An extended CFG.

    Attributes
    ----------
    start:
        The start nonterminal (the paper's ``S``).
    rules:
        Mapping from nonterminal to a *tuple of alternative* regexes.  The
        paper writes one regex per nonterminal; alternatives make the
        ``X -> <x> X̂ </x>`` / ``X -> X̂`` pair of ``G'`` direct to express.
        ``None`` as an alternative denotes the epsilon production (used for
        ``PCDATA -> ε`` and ``EMPTY`` content).
    nonterminals:
        The domain of ``rules``.
    """

    start: str
    rules: Mapping[str, tuple[ContentNode | None, ...]]

    def __post_init__(self) -> None:
        if self.start not in self.rules:
            raise GrammarError(f"ECFG start symbol {self.start!r} has no rule")

    @property
    def nonterminals(self) -> frozenset[str]:
        return frozenset(self.rules)

    def rule_count(self) -> int:
        return sum(len(alternatives) for alternatives in self.rules.values())


class _Expander:
    """Stateful regex-to-productions compiler with fresh-name generation."""

    def __init__(self, ecfg: ECFG) -> None:
        self._ecfg = ecfg
        self._productions: list[Production] = []
        self._fresh = 0

    def _fresh_name(self, head: str, kind: str) -> str:
        self._fresh += 1
        return f"{head}%{kind}{self._fresh}"

    def expand(self) -> Grammar:
        for head, alternatives in self._ecfg.rules.items():
            for regex in alternatives:
                body = () if regex is None else self._compile(regex, head)
                self._productions.append(Production(head, body))
        return Grammar(self._ecfg.start, self._productions)

    def _compile(self, node: ContentNode, head: str) -> tuple[str, ...]:
        """Compile *node* into a symbol sequence, emitting aux productions."""
        if isinstance(node, Name):
            return (node.name,)
        if isinstance(node, PCData):
            raise GrammarError("PCData leaves are not valid ECFG symbols")
        if isinstance(node, Seq):
            body: list[str] = []
            for item in node.items:
                body.extend(self._compile(item, head))
            return tuple(body)
        if isinstance(node, Choice):
            aux = self._fresh_name(head, "alt")
            for item in node.items:
                self._productions.append(Production(aux, self._compile(item, head)))
            return (aux,)
        if isinstance(node, Star):
            aux = self._fresh_name(head, "star")
            inner = self._compile(node.item, head)
            self._productions.append(Production(aux, ()))
            self._productions.append(Production(aux, inner + (aux,)))
            return (aux,)
        if isinstance(node, Opt):
            aux = self._fresh_name(head, "opt")
            self._productions.append(Production(aux, ()))
            self._productions.append(Production(aux, self._compile(node.item, head)))
            return (aux,)
        if isinstance(node, Plus):
            aux = self._fresh_name(head, "plus")
            star = self._fresh_name(head, "star")
            inner = self._compile(node.item, head)
            self._productions.append(Production(star, ()))
            self._productions.append(Production(star, inner + (star,)))
            self._productions.append(Production(aux, inner + (star,)))
            return (aux,)
        raise GrammarError(f"unexpected regex node {node!r}")


def ecfg_to_cfg(ecfg: ECFG) -> Grammar:
    """Expand *ecfg* into a plain CFG (fresh aux nonterminals, epsilon rules).

    Auxiliary nonterminals are named ``<head>%<kind><n>`` — ``%`` cannot
    occur in element names or tag terminals, so they never collide.
    """
    return _Expander(ecfg).expand()
