"""Construct the paper's grammars from a DTD.

Three constructions:

* :func:`build_validity_ecfg` — ``G_{T,r}`` (Section 3.1): recognizes
  ``delta_T(w)`` for *valid* documents ``w``.
* :func:`build_pv_ecfg` — ``G'_{T,r}`` (Section 3.2): adds the rules
  ``X -> X̂`` (one per element), so electing not to derive a tag pair mimics
  a *missing* tag; recognizes ``delta_T(w)`` for *potentially valid*
  documents (Theorem 1).
* :func:`build_content_cfg` — the per-element *content* grammar over the
  ``Delta_T`` alphabet (element names + sigma) used as the exact reference
  for Problem ECPV: token sequence ``s`` is a potentially valid content of
  ``a`` iff ``CONTENT:a`` derives ``s``.

Naming conventions (all prefixes collision-free with XML names and tag
terminals): ``N:x`` for the paper's ``X``, ``H:x`` for ``X̂``, ``N:#PCDATA``
for the ``PCDATA`` nonterminal, ``C:x``/``CONTENT:x`` for the content
grammar, ``S`` for the start symbol.
"""

from __future__ import annotations

from repro.dtd.ast import Choice, ContentNode, Name, Opt, PCData, Plus, Seq, Star
from repro.dtd.model import DTD
from repro.grammar.cfg import Grammar
from repro.grammar.ecfg import ECFG, ecfg_to_cfg
from repro.xmlmodel.delta import SIGMA, end_tag, start_tag

__all__ = [
    "element_nonterminal",
    "hat_nonterminal",
    "content_nonterminal",
    "PCDATA_NONTERMINAL",
    "START_SYMBOL",
    "build_validity_ecfg",
    "build_pv_ecfg",
    "build_content_cfg",
]

#: The grammar start symbol ``S``.
START_SYMBOL = "S"

#: The nonterminal the paper calls ``PCDATA`` (its terminal sigma is
#: :data:`repro.xmlmodel.delta.SIGMA`).
PCDATA_NONTERMINAL = "N:#PCDATA"


def element_nonterminal(name: str) -> str:
    """The paper's ``X`` for element type ``x``."""
    return f"N:{name}"


def hat_nonterminal(name: str) -> str:
    """The paper's ``X̂`` for element type ``x``."""
    return f"H:{name}"


def content_nonterminal(name: str) -> str:
    """Start symbol for the ECPV content grammar of element ``x``."""
    return f"CONTENT:{name}"


def _token_nonterminal(name: str) -> str:
    """Content-grammar nonterminal covering one child token of type ``x``."""
    return f"C:{name}"


def _transcribe(node: ContentNode, name_map, pcdata_symbol: str) -> ContentNode:
    """Rewrite a content model into an ECFG regex over grammar symbols."""
    if isinstance(node, Name):
        return Name(name_map(node.name))
    if isinstance(node, PCData):
        return Name(pcdata_symbol)
    if isinstance(node, Seq):
        return Seq(
            tuple(_transcribe(item, name_map, pcdata_symbol) for item in node.items)
        )
    if isinstance(node, Choice):
        return Choice(
            tuple(_transcribe(item, name_map, pcdata_symbol) for item in node.items)
        )
    if isinstance(node, Star):
        return Star(_transcribe(node.item, name_map, pcdata_symbol))
    if isinstance(node, Plus):
        return Plus(_transcribe(node.item, name_map, pcdata_symbol))
    if isinstance(node, Opt):
        return Opt(_transcribe(node.item, name_map, pcdata_symbol))
    raise TypeError(f"unexpected content node {node!r}")


def _element_rules(dtd: DTD) -> dict[str, tuple[ContentNode | None, ...]]:
    """The shared core of ``G`` and ``G'``: S, PCDATA, X and X̂ rules."""
    rules: dict[str, tuple[ContentNode | None, ...]] = {
        START_SYMBOL: (Name(element_nonterminal(dtd.root)),),
        PCDATA_NONTERMINAL: (Name(SIGMA), None),
    }
    for decl in dtd:
        x = decl.name
        rules[element_nonterminal(x)] = (
            Seq(
                (
                    Name(start_tag(x)),
                    Name(hat_nonterminal(x)),
                    Name(end_tag(x)),
                )
            ),
        )
        regex = decl.content.regex(dtd)
        if regex is None:
            rules[hat_nonterminal(x)] = (None,)
        else:
            rules[hat_nonterminal(x)] = (
                _transcribe(regex, element_nonterminal, PCDATA_NONTERMINAL),
            )
    return rules


def build_validity_ecfg(dtd: DTD) -> ECFG:
    """The paper's ``G_{T,r}`` (Section 3.1, Example 3)."""
    return ECFG(START_SYMBOL, _element_rules(dtd))


def build_pv_ecfg(dtd: DTD) -> ECFG:
    """The paper's ``G'_{T,r}`` (Section 3.2): ``G`` plus ``X -> X̂`` rules."""
    rules = _element_rules(dtd)
    for decl in dtd:
        x = decl.name
        existing = rules[element_nonterminal(x)]
        rules[element_nonterminal(x)] = existing + (Name(hat_nonterminal(x)),)
    return ECFG(START_SYMBOL, rules)


def build_content_cfg(dtd: DTD) -> Grammar:
    """The per-element content grammar over the ``Delta_T`` alphabet.

    For every element ``x``:

    * ``CONTENT:x`` derives exactly the potentially valid child-token
      sequences of ``x`` (the language of ``X̂`` in ``G'`` projected onto
      the children alphabet),
    * ``C:x -> x | CONTENT:x`` covers one child slot of type ``x``: either
      the actual tag is present (token ``x``) or the tag is missing and the
      slot's content surfaces directly (``CONTENT:x``, which may be empty).

    Character data: ``C:#PCDATA -> #PCDATA | ε`` (a ``#PCDATA`` position
    may hold one collapsed text run or nothing).

    The returned grammar's default start symbol is ``CONTENT:<root>``;
    pass ``start=content_nonterminal(x)`` to the Earley recognizer to check
    any other element.
    """
    rules: dict[str, tuple[ContentNode | None, ...]] = {
        _token_nonterminal(SIGMA): (Name(SIGMA), None),
    }
    for decl in dtd:
        x = decl.name
        regex = decl.content.regex(dtd)
        if regex is None:
            rules[content_nonterminal(x)] = (None,)
        else:
            rules[content_nonterminal(x)] = (
                _transcribe(regex, _token_nonterminal, _token_nonterminal(SIGMA)),
            )
        rules[_token_nonterminal(x)] = (
            Name(x),
            Name(content_nonterminal(x)),
        )
    ecfg = ECFG(content_nonterminal(dtd.root), rules)
    return ecfg_to_cfg(ecfg)
