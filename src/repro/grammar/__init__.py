"""Grammar substrate: CFGs, the paper's ECFG constructions, Earley, Glushkov.

* :mod:`repro.grammar.cfg` — plain context-free grammars and nullability,
* :mod:`repro.grammar.ecfg` — extended CFGs (regex right-hand sides) and
  their expansion to plain CFGs,
* :mod:`repro.grammar.build` — the paper's ``G_{T,r}`` (validity, Section
  3.1), ``G'_{T,r}`` (potential validity, Section 3.2) and the per-element
  content grammar used by the exact ECPV reference,
* :mod:`repro.grammar.earley` — the Earley recognizer (the paper's general
  CFG parsing baseline, its reference [6]),
* :mod:`repro.grammar.glushkov` — position automata for content models,
  shared by the standard validator and the Section 4.2 DAG model.
"""

from repro.grammar.cfg import Grammar, Production
from repro.grammar.ecfg import ECFG, ecfg_to_cfg
from repro.grammar.build import (
    build_content_cfg,
    build_pv_ecfg,
    build_validity_ecfg,
    content_nonterminal,
    hat_nonterminal,
    element_nonterminal,
)
from repro.grammar.earley import EarleyRecognizer

__all__ = [
    "Grammar",
    "Production",
    "ECFG",
    "ecfg_to_cfg",
    "build_content_cfg",
    "build_pv_ecfg",
    "build_validity_ecfg",
    "content_nonterminal",
    "hat_nonterminal",
    "element_nonterminal",
    "EarleyRecognizer",
]
