"""An Earley recognizer for plain CFGs.

This is the paper's explicitly named baseline: Section 1 and Section 3.3
point out that because ``G'_{T,r}`` is highly ambiguous, "such standard CFG
parsing algorithms as Earley's are not practical" — but they are *correct*
for arbitrary CFGs, which makes this implementation the exact reference
against which the linear-time recognizers are differentially tested, and the
comparator for the E2 benchmark.

Implementation notes
--------------------
* Items are ``(production_index, dot, origin)`` triples, deduplicated per
  chart position.
* Epsilon productions are handled with the Aycock–Horspool refinement:
  when the predictor meets a *nullable* nonterminal it also advances the
  dot immediately, which makes the classic completer sound in the presence
  of the many epsilon rules Theorem 3 guarantees ``G'`` has.
* Complexity is the textbook ``O(|G|^2 · n^3)`` worst case; ambiguity in
  ``G'`` makes the constants heavy — that is precisely the paper's point.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import GrammarError
from repro.grammar.cfg import Grammar

__all__ = ["EarleyRecognizer"]


class EarleyRecognizer:
    """Recognize token sequences against a :class:`~repro.grammar.cfg.Grammar`."""

    def __init__(self, grammar: Grammar) -> None:
        self.grammar = grammar
        self._productions = grammar.productions
        self._by_head: dict[str, list[int]] = {}
        for index, production in enumerate(self._productions):
            self._by_head.setdefault(production.head, []).append(index)

    def recognizes(
        self, tokens: Sequence[str], start: str | None = None
    ) -> bool:
        """Return ``True`` iff *tokens* is derivable from *start*.

        Parameters
        ----------
        tokens:
            Terminal symbols (strings).
        start:
            Start nonterminal; defaults to the grammar's start symbol.
        """
        grammar = self.grammar
        start = start if start is not None else grammar.start
        if start not in grammar.nonterminals:
            raise GrammarError(f"unknown start symbol {start!r}")

        productions = self._productions
        by_head = self._by_head
        nullable = grammar.nullable
        n = len(tokens)

        # chart[i]: set of items; wants[i]: symbol -> items awaiting it.
        chart: list[set[tuple[int, int, int]]] = [set() for _ in range(n + 1)]
        wants: list[dict[str, list[tuple[int, int, int]]]] = [
            {} for _ in range(n + 1)
        ]

        def add(position: int, item: tuple[int, int, int], agenda: list) -> None:
            if item in chart[position]:
                return
            chart[position].add(item)
            agenda.append(item)

        agenda: list[tuple[int, int, int]] = []
        for production_index in by_head.get(start, ()):
            add(0, (production_index, 0, 0), agenda)

        position = 0
        while True:
            while agenda:
                production_index, dot, origin = agenda.pop()
                production = productions[production_index]
                body = production.body
                if dot == len(body):
                    # Completer.  Empty-span completions (origin == position)
                    # are covered by the predictor's nullable advance, so the
                    # waiter list being extended later cannot lose parses.
                    head = production.head
                    for waiting in wants[origin].get(head, ()):  # advance waiters
                        w_production, w_dot, w_origin = waiting
                        add(position, (w_production, w_dot + 1, w_origin), agenda)
                    continue
                symbol = body[dot]
                if grammar.is_nonterminal(symbol):
                    # Predictor (with nullable advance).
                    item = (production_index, dot, origin)
                    wants[position].setdefault(symbol, []).append(item)
                    for predicted_index in by_head.get(symbol, ()):
                        add(position, (predicted_index, 0, position), agenda)
                    if symbol in nullable:
                        add(position, (production_index, dot + 1, origin), agenda)
                    # A completion of `symbol` spanning [position, position]
                    # may already have happened; the nullable advance covers
                    # exactly that epsilon case, and non-epsilon completions
                    # within a single position are impossible.
                else:
                    # Scanner handled in the position advance below; items
                    # whose next symbol is a terminal simply wait there.
                    pass
            if position == n:
                break
            token = tokens[position]
            next_agenda: list[tuple[int, int, int]] = []
            for production_index, dot, origin in chart[position]:
                body = productions[production_index].body
                if dot < len(body):
                    symbol = body[dot]
                    if symbol == token and not grammar.is_nonterminal(symbol):
                        add(
                            position + 1,
                            (production_index, dot + 1, origin),
                            next_agenda,
                        )
            position += 1
            if not next_agenda:
                return False
            agenda = next_agenda

        for production_index, dot, origin in chart[n]:
            production = productions[production_index]
            if (
                production.head == start
                and origin == 0
                and dot == len(production.body)
            ):
                return True
        return False
