"""Reusable benchmark scenarios (document builders shared across modules)."""

from __future__ import annotations

import random

from repro.dtd.model import DTD
from repro.workloads.degrade import degrade
from repro.workloads.docgen import DocumentGenerator
from repro.xmlmodel.tree import XmlDocument

__all__ = ["degraded_document", "valid_document"]


def valid_document(dtd: DTD, target_nodes: int, seed: int = 11) -> XmlDocument:
    """A random valid document of roughly *target_nodes* elements."""
    return DocumentGenerator(dtd, seed=seed).document(
        target_nodes=target_nodes, max_depth=10
    )


def degraded_document(
    dtd: DTD, target_nodes: int, seed: int = 11, fraction: float = 0.5
) -> XmlDocument:
    """A potentially valid mid-edit document (Theorem 2 degradation)."""
    document = valid_document(dtd, target_nodes, seed=seed)
    result, _removed = degrade(document, random.Random(seed), fraction)
    return result
