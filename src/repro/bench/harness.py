"""Benchmark harness utilities.

The paper publishes no measured tables (it argues complexity analytically),
so each benchmark in ``benchmarks/`` regenerates the corresponding *claim*
as a measured table: the helpers here time callables robustly, render
aligned tables the way the paper's prose states its results ("linear in
n", "O(1)", "general CFG parsing is impractical"), and fit power laws so
the claimed exponents are checked numerically rather than eyeballed.

Checkers used in benchmarks are sourced from the process-wide schema
registry via :func:`checker_for`, so timing loops measure *checking*, not
accidental per-iteration schema recompilation; the cold-compilation cost
itself is measured explicitly by the E10 batch-throughput benchmark.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

__all__ = ["time_callable", "Table", "fit_power_law", "checker_for", "throughput"]


def checker_for(dtd, algorithm: str = "machine", config=None):
    """A :class:`~repro.core.pv.PVChecker` for *dtd* — the benchmark-facing
    name for plain construction, which already resolves through the default
    schema registry (so timing loops never recompile per iteration).
    """
    from repro.config import DEFAULT_CONFIG
    from repro.core.pv import PVChecker

    return PVChecker(
        dtd,
        config=DEFAULT_CONFIG if config is None else config,
        algorithm=algorithm,
    )


def throughput(count: int, seconds: float) -> float:
    """Documents (or tokens, nodes, ...) per second; inf for zero time."""
    return count / seconds if seconds > 0 else math.inf


def time_callable(
    fn: Callable[[], object],
    repeat: int = 5,
    warmup: int = 1,
) -> float:
    """Best-of-*repeat* wall time of ``fn()`` in seconds (after warmup runs)."""
    for _ in range(warmup):
        fn()
    best = math.inf
    for _ in range(repeat):
        started = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - started
        best = min(best, elapsed)
    return best


@dataclass
class Table:
    """A fixed-column text table printed the way EXPERIMENTS.md records results."""

    title: str
    columns: Sequence[str]
    rows: list[Sequence[object]] = field(default_factory=list)

    def add_row(self, *values: object) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} values, got {len(values)}"
            )
        self.rows.append(values)

    def render(self) -> str:
        header = [str(column) for column in self.columns]
        body = [[_format(value) for value in row] for row in self.rows]
        widths = [
            max(len(header[i]), *(len(row[i]) for row in body)) if body else len(header[i])
            for i in range(len(header))
        ]
        lines = [self.title, "-" * len(self.title)]
        lines.append("  ".join(header[i].ljust(widths[i]) for i in range(len(header))))
        lines.append("  ".join("-" * widths[i] for i in range(len(header))))
        for row in body:
            lines.append("  ".join(row[i].rjust(widths[i]) for i in range(len(row))))
        return "\n".join(lines)

    def print(self) -> None:
        print()
        print(self.render())
        print()


def _format(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 100 or magnitude < 0.001:
            return f"{value:.3e}"
        return f"{value:.4f}"
    return str(value)


def fit_power_law(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Least-squares slope of log(y) against log(x).

    An empirical scaling exponent: ~1.0 confirms "linear in n" (Theorem 4),
    ~0.0 confirms "O(1)" (Proposition 3), and the Earley baseline lands
    visibly above both.
    """
    if len(xs) != len(ys) or len(xs) < 2:
        raise ValueError("need at least two paired samples")
    log_x = [math.log(x) for x in xs]
    log_y = [math.log(max(y, 1e-12)) for y in ys]
    n = len(log_x)
    mean_x = sum(log_x) / n
    mean_y = sum(log_y) / n
    numerator = sum((lx - mean_x) * (ly - mean_y) for lx, ly in zip(log_x, log_y))
    denominator = sum((lx - mean_x) ** 2 for lx in log_x)
    return numerator / denominator
