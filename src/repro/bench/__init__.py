"""Benchmark support: timing, table rendering, scaling fits."""

from repro.bench.harness import Table, fit_power_law, time_callable

__all__ = ["Table", "fit_power_law", "time_callable"]
