"""DTD classification reports (Definitions 6-8).

A thin presentation layer over :mod:`repro.dtd.analysis`: the paper's three
DTD classes plus the size measures of Section 4.4 (``m``, ``k``) and the
usability summary, bundled for examples and the E7 benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dtd.analysis import DTDAnalysis, DTDClass, analyze
from repro.dtd.model import DTD

__all__ = ["ClassificationReport", "classify_dtd"]


@dataclass(frozen=True)
class ClassificationReport:
    """Everything Section 4.3 wants to know about a DTD before checking."""

    name: str
    dtd_class: DTDClass
    element_count: int          # the paper's m
    occurrence_count: int       # the paper's k
    recursive_elements: tuple[str, ...]
    strong_recursive_elements: tuple[str, ...]
    unusable_elements: tuple[str, ...]

    @property
    def is_recursive(self) -> bool:
        return self.dtd_class is not DTDClass.NON_RECURSIVE

    @property
    def needs_depth_bound(self) -> bool:
        """Only PV-strong recursive DTDs can make greedy recognition loop
        (Figure 7); everything else admits an exact derived bound."""
        return self.dtd_class is DTDClass.PV_STRONG_RECURSIVE

    def summary(self) -> str:
        """A one-line, table-friendly description."""
        return (
            f"{self.name}: {self.dtd_class.value} "
            f"(m={self.element_count}, k={self.occurrence_count}, "
            f"recursive={len(self.recursive_elements)}, "
            f"strong={len(self.strong_recursive_elements)}, "
            f"unusable={len(self.unusable_elements)})"
        )


def classify_dtd(dtd: DTD, analysis: DTDAnalysis | None = None) -> ClassificationReport:
    """Classify *dtd* per Definitions 6-8 and collect its size measures.

    Pass a precomputed *analysis* (e.g. ``CompiledSchema.analysis``) to
    build the report with zero recomputation.
    """
    if analysis is None:
        analysis = analyze(dtd)
    return ClassificationReport(
        name=dtd.name,
        dtd_class=analysis.dtd_class,
        element_count=dtd.element_count,
        occurrence_count=dtd.occurrence_count,
        recursive_elements=tuple(sorted(analysis.recursive_elements)),
        strong_recursive_elements=tuple(sorted(analysis.strong_recursive_elements)),
        unusable_elements=tuple(sorted(analysis.unusable)),
    )
