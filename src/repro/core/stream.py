"""Treeless checking: verdicts straight off the event stream.

The classic pipeline materializes an :class:`~repro.xmlmodel.tree.XmlDocument`
and then walks it node by node, converting each child list through
``Delta_T``.  For the kernel tier that tree is pure overhead: the merged-GSS
machine only ever consumes interned symbol ids, one per child, in document
order — exactly the order :func:`repro.xmlmodel.fastlex.scan_events`
produces them.  This module fuses the two passes:

* :func:`stream_check_document` — Problem PV with kernel semantics, one
  pass over the source text, tag names interned to
  :class:`~repro.core.tables.CompiledTables` ids as they are scanned.
  Verdict- and failure-identical to
  ``PVChecker(algorithm="kernel").check_document(parse_xml(text))``,
  including every well-formedness diagnostic (the fused pass never stops
  scanning early, so a malformed suffix still raises exactly as the
  parse-first pipeline would).
* :func:`stream_coarse_check` — the coarse admission pass over the same
  events.  Outcome-identical to
  :meth:`~repro.core.coarse.CoarseChecker.check_document` on the parsed
  tree; the *reported* node of a reject may differ (the tree pass visits
  children in reverse document order), which is why admission surfaces
  that promise byte-identical replies keep the tree path.

Failure paths are computed lazily by walking the open-frame chain — the
hot loop never builds path strings for nodes that pass.
"""

from __future__ import annotations

from repro.core.coarse import CoarseSummary, CoarseVerdict
from repro.core.kernel import KernelMachine
from repro.core.pv import NodeFailure, PVVerdict
from repro.errors import XmlSyntaxError
from repro.service.compiled import CompiledSchema
from repro.xmlmodel.delta import SIGMA
from repro.xmlmodel.fastlex import EV_END, EV_START, EV_TEXT, _loc, scan_events

__all__ = ["stream_check_document", "stream_coarse_check"]

# Frame layout for the kernel pass (lists beat attribute access in the
# inner loop).  ``SYMBOLS is None`` marks a suppressed frame: under an
# undeclared element or a mismatched root nothing is checked or recorded,
# matching the tree walker's early returns.
_NAME = 0
_MACHINE = 1
_SYMBOLS = 2
_FAILURES = 3
_OWN = 4
_PARENT = 5
_INDEX = 6
_CHILDREN = 7
_DEAD = 8

_CONTENT_REASON = "content cannot be completed by tag insertions alone"


def _frame_path(frame: list) -> str:
    """The ``/root/child[i]`` path of *frame*, built only on failure."""
    parts = []
    while frame[_PARENT] is not None:
        parts.append(f"/{frame[_NAME]}[{frame[_INDEX]}]")
        frame = frame[_PARENT]
    parts.append(f"/{frame[_NAME]}")
    return "".join(reversed(parts))


def stream_check_document(compiled: CompiledSchema, source: str) -> PVVerdict:
    """Problem PV over *source* with kernel semantics, no tree built."""
    tables = compiled.tables
    sid_get = tables.sid.get
    sigma_id = tables.sid[SIGMA]
    dtd_root = compiled.dtd.root

    stack: list[list] = []
    root_failures: list[NodeFailure] | None = None
    root_mismatch: NodeFailure | None = None
    root_seen = False

    for kind, payload, offset in scan_events(source):
        if kind == EV_START:
            if stack:
                parent = stack[-1]
                index = parent[_CHILDREN]
                parent[_CHILDREN] = index + 1
                symbols = parent[_SYMBOLS]
                if symbols is None:
                    # Suppressed subtree: track nesting only.
                    stack.append(
                        [payload, None, None, None, None, parent, index, 0, False]
                    )
                    continue
                symbols.append(payload)
                if not parent[_MACHINE].step(sid_get(payload, -1)):
                    parent[_DEAD] = True
                if sid_get(payload) is None:
                    frame = [payload, None, None, None, None, parent, index, 0, False]
                    frame[_OWN] = NodeFailure(
                        path=_frame_path(frame),
                        element=payload,
                        symbols=(),
                        reason=(
                            f"element type <{payload}> is not declared in the DTD"
                        ),
                    )
                    stack.append(frame)
                    continue
                stack.append(
                    [
                        payload,
                        KernelMachine(tables, payload),
                        [],
                        [],
                        None,
                        parent,
                        index,
                        0,
                        False,
                    ]
                )
                continue
            if root_seen:
                raise XmlSyntaxError(
                    f"multiple root elements: second root <{payload}>",
                    *_loc(source, offset),
                )
            root_seen = True
            if payload != dtd_root:
                root_mismatch = NodeFailure(
                    path="/",
                    element=payload,
                    symbols=(),
                    reason=(
                        f"document root is <{payload}> but the DTD root is "
                        f"<{dtd_root}>"
                    ),
                )
                stack.append([payload, None, None, None, None, None, 0, 0, False])
                continue
            stack.append(
                [
                    payload,
                    KernelMachine(tables, payload),
                    [],
                    [],
                    None,
                    None,
                    0,
                    0,
                    False,
                ]
            )
        elif kind == EV_TEXT:
            if not stack:
                if payload.strip():
                    raise XmlSyntaxError(
                        "character data outside the root element",
                        *_loc(source, offset),
                    )
                continue
            if not payload:
                continue
            frame = stack[-1]
            symbols = frame[_SYMBOLS]
            if symbols is None:
                continue
            if not symbols or symbols[-1] != SIGMA:
                symbols.append(SIGMA)
                if not frame[_MACHINE].step(sigma_id):
                    frame[_DEAD] = True
        else:  # EV_END
            if not stack:
                raise XmlSyntaxError(
                    f"unmatched end tag </{payload}>", *_loc(source, offset)
                )
            frame = stack.pop()
            if frame[_NAME] != payload:
                raise XmlSyntaxError(
                    f"end tag </{payload}> does not match open <{frame[_NAME]}>",
                    *_loc(source, offset),
                )
            own = frame[_OWN]
            subtree = frame[_FAILURES]
            if frame[_SYMBOLS] is not None:
                if frame[_DEAD] or not frame[_MACHINE].accepts_now():
                    own = NodeFailure(
                        path=_frame_path(frame),
                        element=frame[_NAME],
                        symbols=tuple(frame[_SYMBOLS]),
                        reason=_CONTENT_REASON,
                    )
            if own is not None:
                # Pre-order: a node's own failure precedes its subtree's.
                if subtree:
                    subtree.insert(0, own)
                else:
                    subtree = [own]
            parent = frame[_PARENT]
            if parent is None:
                root_failures = subtree or []
            elif subtree and parent[_FAILURES] is not None:
                parent[_FAILURES].extend(subtree)
    if stack:
        raise XmlSyntaxError(
            f"unclosed element <{stack[-1][_NAME]}>", *_loc(source, len(source))
        )
    if not root_seen:
        raise XmlSyntaxError("document has no root element")
    if root_mismatch is not None:
        return PVVerdict(False, (root_mismatch,), depth_limited=False)
    failures = tuple(root_failures or ())
    # The kernel tier is exact and unbounded: never depth-limited.
    return PVVerdict(not failures, failures, depth_limited=False)


# Frame layout for the coarse pass: [name, bit, seen, symbols, accept,
# last_sigma, path, child_index].  ``bit is None`` marks an undeclared
# element (its parent's token check already rejected; the frame is inert).
_C_NAME = 0
_C_BIT = 1
_C_SEEN = 2
_C_COUNT = 3
_C_ACCEPT = 4
_C_LAST_SIGMA = 5
_C_PATH = 6
_C_CHILDREN = 7


def stream_coarse_check(summary: CoarseSummary, source: str) -> CoarseVerdict:
    """The coarse admission pass over *source*, no tree built.

    Outcome-identical to the tree :class:`~repro.core.coarse.CoarseChecker`
    (a reject here implies a reject there and vice versa); the reported
    node may differ because the tree pass visits children in reverse
    document order.  Well-formedness errors raise exactly as the
    parse-first pipeline would — a pending verdict never swallows one.
    """
    pcdata_bit = summary.pcdata_bit
    element_bit = summary.element_bit
    allowed_masks = summary.allowed
    accepts_masks = summary.accepts
    counts = summary.counts
    totals = summary.totals
    empty_ok = summary.empty_ok

    stack: list[list] = []
    reject: CoarseVerdict | None = None
    uncertain: CoarseVerdict | None = None
    root_seen = False

    def child_token(frame: list, token_bit: int | None, symbol: str) -> None:
        """Apply one ``Delta_T`` token to *frame* (the tree loop, inlined)."""
        nonlocal reject
        bit = frame[_C_BIT]
        name = frame[_C_NAME]
        frame[_C_COUNT] += 1
        if token_bit is None or not (allowed_masks[bit] >> token_bit) & 1:
            if symbol == SIGMA:
                reason = (
                    f"character data can never occur inside <{name}> "
                    "(no insertion chain embeds it)"
                )
            elif token_bit is None:
                reason = (
                    f"child <{symbol}> is not declared in the DTD, so the "
                    f"content of <{name}> can never complete"
                )
            else:
                reason = (
                    f"<{symbol}> can never occur inside <{name}> "
                    "(no insertion chain embeds it)"
                )
            reject = CoarseVerdict(
                "reject", path=frame[_C_PATH], element=name, reason=reason
            )
            return
        seen = frame[_C_SEEN]
        tally = seen.get(token_bit, 0) + 1
        seen[token_bit] = tally
        limit = counts[bit].get(token_bit)
        if limit is not None and tally > limit:
            what = (
                "character-data runs"
                if token_bit == pcdata_bit
                else f"<{symbol}> children"
            )
            reject = CoarseVerdict(
                "reject",
                path=frame[_C_PATH],
                element=name,
                reason=(
                    f"{tally} {what} exceed the most any completable "
                    f"content of <{name}> embeds ({limit})"
                ),
            )
            return
        if not (accepts_masks[bit] >> token_bit) & 1:
            frame[_C_ACCEPT] = False

    for kind, payload, offset in scan_events(source):
        if kind == EV_START:
            if not stack:
                if root_seen:
                    raise XmlSyntaxError(
                        f"multiple root elements: second root <{payload}>",
                        *_loc(source, offset),
                    )
                root_seen = True
                if reject is None and payload != summary.root:
                    reject = CoarseVerdict(
                        "reject",
                        path="/",
                        element=payload,
                        reason=(
                            f"document root is <{payload}> but the DTD root "
                            f"is <{summary.root}>"
                        ),
                    )
                bit = element_bit(payload) if reject is None else None
                stack.append([payload, bit, {}, 0, True, False, f"/{payload}", 0])
                continue
            parent = stack[-1]
            path = f"{parent[_C_PATH]}/{payload}[{parent[_C_CHILDREN]}]"
            parent[_C_CHILDREN] += 1
            bit = element_bit(payload)
            if reject is None and parent[_C_BIT] is not None:
                parent[_C_LAST_SIGMA] = False
                child_token(parent, bit, payload)
            if reject is not None:
                bit = None
            stack.append([payload, bit, {}, 0, True, False, path, 0])
        elif kind == EV_TEXT:
            if not stack:
                if payload.strip():
                    raise XmlSyntaxError(
                        "character data outside the root element",
                        *_loc(source, offset),
                    )
                continue
            if not payload:
                continue
            frame = stack[-1]
            if reject is None and frame[_C_BIT] is not None:
                if not frame[_C_LAST_SIGMA]:
                    frame[_C_LAST_SIGMA] = True
                    child_token(frame, pcdata_bit, SIGMA)
        else:  # EV_END
            if not stack:
                raise XmlSyntaxError(
                    f"unmatched end tag </{payload}>", *_loc(source, offset)
                )
            frame = stack.pop()
            if frame[_C_NAME] != payload:
                raise XmlSyntaxError(
                    f"end tag </{payload}> does not match open <{frame[_C_NAME]}>",
                    *_loc(source, offset),
                )
            if reject is not None:
                continue
            bit = frame[_C_BIT]
            if bit is None:
                continue
            name = frame[_C_NAME]
            if frame[_C_COUNT] == 0:
                if not (empty_ok >> bit) & 1:
                    reject = CoarseVerdict(
                        "reject",
                        path=frame[_C_PATH],
                        element=name,
                        reason=(
                            f"the empty content of <{name}> cannot be "
                            "completed by tag insertions alone"
                        ),
                    )
                continue
            total = totals[bit]
            if total is not None and frame[_C_COUNT] > total:
                reject = CoarseVerdict(
                    "reject",
                    path=frame[_C_PATH],
                    element=name,
                    reason=(
                        f"{frame[_C_COUNT]} children exceed the most any "
                        f"completable content of <{name}> embeds ({total})"
                    ),
                )
                continue
            if not frame[_C_ACCEPT] and uncertain is None:
                uncertain = CoarseVerdict(
                    "uncertain",
                    path=frame[_C_PATH],
                    element=name,
                    reason=(
                        "children may need insertions; escalating to a "
                        "full backend"
                    ),
                )
    if stack:
        raise XmlSyntaxError(
            f"unclosed element <{stack[-1][_C_NAME]}>", *_loc(source, len(source))
        )
    if not root_seen:
        raise XmlSyntaxError("document has no root element")
    if reject is not None:
        return reject
    if uncertain is not None:
        return uncertain
    return CoarseVerdict(
        "accept", reason="every node's children already spell a word"
    )
