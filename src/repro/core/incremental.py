"""Update-time potential-validity checks (Sections 3.2 and 4.1).

The editorial workflow checks each *operation*, not the whole document:

* **Character-data update** (changing an existing text node): always
  preserves potential validity (Theorem 2) — ``delta_T`` maps any non-empty
  run to the same single sigma.  The only transitions that matter are a
  text node becoming empty (a content deletion — also closed, Theorem 2)
  or an empty one becoming non-empty (an insertion, below).  O(1).
* **Character-data insertion** (creating a new text node under element
  ``x``): the paper's Proposition 3 rule answers in O(1) with one lookup,
  ``x ⤳ #PCDATA``.  We implement that rule verbatim
  (:func:`prop3_char_insert_ok`) *and* an exact positional check
  (:func:`check_text_insert`).  The two agree whenever ``x`` has mixed
  content (text is legal at every slot); with transitive-only reachability
  the O(1) rule is necessary but not sufficient — see the documented
  counterexample in the tests and EXPERIMENTS.md.
* **Markup deletion**: closed under potential validity (Theorem 2), no
  check needed — :func:`check_markup_delete` returns a constant ``True``
  and exists so editor code reads uniformly.
* **Markup insertion** (wrapping children ``[i:j)`` of ``x`` with a new
  ``<y>``): Section 4's reduction — solve Problem ECPV twice, once for the
  new node and once for the modified parent.  Everything else in the
  document is untouched, so on a previously potentially valid document the
  two local checks are equivalent to a full re-check (property-tested).
"""

from __future__ import annotations

from repro.config import CheckerConfig, DEFAULT_CONFIG
from repro.core.pv import PVChecker
from repro.dtd.model import DTD, PCDATA
from repro.xmlmodel.delta import SIGMA, content_symbols
from repro.xmlmodel.tree import XmlElement

__all__ = [
    "IncrementalChecker",
    "prop3_char_insert_ok",
]


def prop3_char_insert_ok(checker_or_dtd, element: str) -> bool:
    """Proposition 3's O(1) rule: text may be inserted under ``element``
    iff ``element ⤳ #PCDATA`` in the reachability lookup table.

    Accepts a :class:`~repro.core.pv.PVChecker` (reusing its analysis) or a
    bare DTD.
    """
    if isinstance(checker_or_dtd, PVChecker):
        analysis = checker_or_dtd.analysis
    else:
        from repro.dtd.analysis import analyze

        analysis = analyze(checker_or_dtd)
    return analysis.lookup(element, PCDATA)


class IncrementalChecker:
    """Per-operation potential-validity guard over one DTD.

    All methods are *pure queries*: they inspect the proposed operation
    against the current tree without mutating it, so an editor can ask
    first and apply after.
    """

    def __init__(
        self,
        dtd: DTD,
        config: CheckerConfig = DEFAULT_CONFIG,
        *,
        compiled=None,
    ) -> None:
        self.dtd = dtd
        #: ``compiled`` is an optional pre-fetched
        #: :class:`~repro.service.compiled.CompiledSchema`; without one the
        #: checker resolves the DTD through the default schema registry.
        self.checker = PVChecker(dtd, config=config, compiled=compiled)

    # -- character data ------------------------------------------------------

    def check_text_update(self, node: XmlElement, child_index: int) -> bool:
        """Updating an existing text node: always fine (Theorem 2). O(1)."""
        del node, child_index
        return True

    def check_text_delete(self, node: XmlElement, child_index: int) -> bool:
        """Deleting character data: a content deletion, closed (Theorem 2)."""
        del node, child_index
        return True

    def check_text_insert_fast(self, parent: XmlElement) -> bool:
        """The paper's O(1) Proposition 3 rule (reachability lookup only)."""
        return prop3_char_insert_ok(self.checker, parent.name)

    def check_text_insert(self, parent: XmlElement, child_index: int) -> bool:
        """Exact check: may a new text node be inserted at *child_index*?

        O(1) when *parent* has mixed/ANY content (text is legal at every
        slot).  Otherwise the inserted sigma must be absorbable at its
        position, which requires one ECPV run over the parent's children —
        still local, but linear in the child count rather than O(1); this
        is the precise cost of making Proposition 3 positional.
        """
        decl = self.dtd.get(parent.name)
        if decl is None:
            return False
        if decl.allows_pcdata_directly():
            return True
        if not self.checker.analysis.can_embed(parent.name, PCDATA):
            return False
        # Inserting next to existing character data extends that run: after
        # the Delta_T collapse it is indistinguishable from a text update,
        # which is always safe (Theorem 2).
        from repro.xmlmodel.tree import XmlText

        for neighbour in (child_index - 1, child_index):
            if 0 <= neighbour < len(parent.children):
                node = parent.children[neighbour]
                if isinstance(node, XmlText) and node.text:
                    return True
        symbols = content_symbols(parent)
        boundary = _symbol_boundary(parent, child_index)
        with_sigma = symbols[:boundary] + [SIGMA] + symbols[boundary:]
        return self.checker.check_content(parent.name, with_sigma)

    # -- markup ------------------------------------------------------------------

    def check_markup_delete(self, parent: XmlElement, child: XmlElement) -> bool:
        """Unwrapping *child* into *parent*: closed under PV (Theorem 2)."""
        del parent, child
        return True

    def check_markup_insert(
        self, parent: XmlElement, start: int, end: int, name: str
    ) -> bool:
        """Section 4's two-ECPV check for wrapping ``children[start:end)``.

        Check 1 — the new node: the wrapped slice must be a potentially
        valid content of ``<name>``.  Check 2 — the parent: its child
        sequence with the slice replaced by ``name`` must remain potentially
        valid content of the parent.
        """
        if name not in self.dtd:
            return False
        inner = _slice_symbols(parent, start, end)
        if not self.checker.check_content(name, inner):
            return False
        outer = _replaced_symbols(parent, start, end, name)
        return self.checker.check_content(parent.name, outer)


def _symbol_boundary(parent: XmlElement, child_index: int) -> int:
    """Map a child index to its position in the ``Delta_T`` symbol sequence."""
    symbols_before = content_symbols_prefix(parent, child_index)
    return len(symbols_before)


def content_symbols_prefix(parent: XmlElement, child_index: int) -> list[str]:
    """``Delta_T`` of the first *child_index* children only."""
    from repro.xmlmodel.tree import XmlText

    symbols: list[str] = []
    for child in parent.children[:child_index]:
        if isinstance(child, XmlText):
            if child.text and (not symbols or symbols[-1] != SIGMA):
                symbols.append(SIGMA)
        else:
            symbols.append(child.name)
    return symbols


def _slice_symbols(parent: XmlElement, start: int, end: int) -> list[str]:
    """``Delta_T`` restricted to children ``[start:end)``."""
    from repro.xmlmodel.tree import XmlText

    symbols: list[str] = []
    for child in parent.children[start:end]:
        if isinstance(child, XmlText):
            if child.text and (not symbols or symbols[-1] != SIGMA):
                symbols.append(SIGMA)
        else:
            symbols.append(child.name)
    return symbols


def _replaced_symbols(
    parent: XmlElement, start: int, end: int, name: str
) -> list[str]:
    """Parent's ``Delta_T`` with children ``[start:end)`` replaced by ``name``."""
    from repro.xmlmodel.tree import XmlText

    symbols: list[str] = []

    def push_text(child) -> None:
        if child.text and (not symbols or symbols[-1] != SIGMA):
            symbols.append(SIGMA)

    for index, child in enumerate(parent.children):
        if index == start:
            symbols.append(name)
        if start <= index < end:
            continue
        if isinstance(child, XmlText):
            push_text(child)
        else:
            symbols.append(child.name)
    if start == len(parent.children):
        symbols.append(name)
    return symbols
