"""Minimal valid instance synthesis.

``minimal_instance(dtd, x)`` builds the smallest (fewest elements) valid
subtree rooted at element ``x`` — the "silent completion" object that
justifies skipping a required position during potential-validity checking
and that the completion engine splices in for content-model positions the
document never supplied (the two ``<d>`` elements of the paper's Figure 3
are exactly such witnesses).

The cost of an element is ``1 +`` the minimum cost of a word of its content
model, computed as a least fixpoint over the mutually recursive
declarations; unproductive elements get infinite cost and synthesis raises
:class:`~repro.errors.UnusableElementError` for them.
"""

from __future__ import annotations

import math
from functools import lru_cache

from repro.dtd import ast
from repro.dtd.ast import Choice, ContentNode, Name, Opt, PCData, Plus, Seq, Star
from repro.dtd.model import DTD
from repro.errors import UnusableElementError
from repro.xmlmodel.tree import XmlElement

__all__ = ["element_costs", "minimal_instance"]


@lru_cache(maxsize=128)
def element_costs(dtd: DTD) -> dict[str, float]:
    """Minimum node count of a valid subtree per element (inf = unproductive)."""
    costs: dict[str, float] = {name: math.inf for name in dtd.element_names()}

    def name_cost(name: str) -> float:
        return costs[name]

    changed = True
    while changed:
        changed = False
        for decl in dtd:
            regex = decl.content.regex(dtd)
            body = 0.0 if regex is None else ast.min_cost_word(regex, name_cost)
            total = 1.0 + body
            if total < costs[decl.name]:
                costs[decl.name] = total
                changed = True
    return costs


def _cheapest_word(node: ContentNode, costs: dict[str, float]) -> list[str]:
    """Element names of a minimum-cost word of *node* (empty text implied)."""
    if isinstance(node, PCData):
        return []  # character data costs nothing; the empty run suffices
    if isinstance(node, Name):
        return [node.name]
    if isinstance(node, Seq):
        word: list[str] = []
        for item in node.items:
            word.extend(_cheapest_word(item, costs))
        return word
    if isinstance(node, Choice):
        best = min(
            node.items,
            key=lambda item: ast.min_cost_word(item, costs.__getitem__),
        )
        return _cheapest_word(best, costs)
    if isinstance(node, (Star, Opt)):
        return []
    if isinstance(node, Plus):
        return _cheapest_word(node.item, costs)
    raise TypeError(f"unexpected content node {node!r}")


def minimal_instance(dtd: DTD, element: str | None = None) -> XmlElement:
    """Build a minimal valid subtree rooted at *element* (default: DTD root).

    Raises :class:`~repro.errors.UnusableElementError` when the element is
    unproductive (no finite valid subtree exists).

    >>> from repro.dtd.catalog import paper_figure1
    >>> from repro.xmlmodel.serialize import to_xml
    >>> to_xml(minimal_instance(paper_figure1(), "f"))
    '<f><c></c><e></e></f>'
    """
    if element is None:
        element = dtd.root
    costs = element_costs(dtd)
    if math.isinf(costs[element]):
        raise UnusableElementError((element,))
    return _build(dtd, element, costs)


def _build(dtd: DTD, element: str, costs: dict[str, float]) -> XmlElement:
    node = XmlElement(element)
    regex = dtd.content_regex(element)
    if regex is None:
        return node
    for child_name in _cheapest_word(regex, costs):
        node.append(_build(dtd, child_name, costs))
    return node
