"""The ECRecognizer algorithm — a faithful transcription of Figure 5.

The recognizer decides Problem ECPV for one element: given the element's
children token sequence (the ``Delta_T`` output — element names and sigma),
``recognize()`` answers "accept"/"reject".

Faithfulness notes (line numbers refer to Figure 5):

* ``activeNodesSet`` is a position-keyed ordered set.  When a node is
  removed and its children appended (line 34-35, the *skip* case) the
  children are examined **in the same round** — that is how the published
  traces (Figure 6) walk past non-matching nodes for the current symbol.
  When a node matches directly (line 29-33) its children are *prepended*,
  i.e. become active for the **next** symbol only.
* Each active node caches one sub-recognizer (``n.recognizer``, line 24-25)
  created on first deep search into a missing element, with ``depth - 1``;
  deep search is attempted only while ``depth > 0`` (line 26) — the
  paper's fix for the Figure 7 infinite loop on PV-strong recursive DTDs.
* The reachability test is the paper's lookup table ``LT`` (Definition 5):
  ``lookup(x, element(n))`` asks whether token ``x`` is reachable *from*
  ``element(n)`` in ``R_T`` (Example 4 notes ``b`` is absent from the
  lookup table of ``b`` for non-recursive DTDs).
* Acceptance never requires exhausting the content model: by Theorem 3 any
  unmatched remainder derives epsilon (for usable DTDs).  ``recognize``
  rejects at the first symbol whose ``validate`` round fails.

Verbatim vs refined mode
------------------------
Transcribed literally, Figure 5 *over-accepts* in one specific situation:
after a node's sub-recognizer has consumed tokens (a "missing element"
hypothesis occupying that DAG position), a later token equal to the node's
own element still direct-matches at line 29 — but the position is already
spent.  E.g. for the Figure 1 DTD, content ``d b`` of element ``a`` is not
potentially valid, yet the verbatim algorithm accepts it.  The paper's own
Example 4 prose hints at node-retirement rules the pseudocode omits
("``f`` is removed from the active node set as its last element was
matched").  ``mode="refined"`` adds the two rules consistent with that
prose:

1. a node whose sub-recognizer has consumed at least one symbol no longer
   direct-matches (the position is occupied by the hypothesized missing
   element);
2. when a sub-recognizer's active set empties after an accepted symbol,
   its node is retired (children prepended) — it can absorb nothing more.

``mode="verbatim"`` keeps the published behaviour; the differential tests
pin both (see EXPERIMENTS.md, finding F-A1).
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.config import DEFAULT_DEPTH_BOUND
from repro.core.dag import DtdDag, ElementDag, build_dag
from repro.dtd.analysis import DTDAnalysis
from repro.dtd.model import DTD, PCDATA
from repro.grammar.glushkov import Position

__all__ = ["ECRecognizer"]

_ACCEPT = "accept"
_REJECT = "reject"


class _ActiveNode:
    """One entry of ``activeNodesSet``: a DAG position plus its cached
    sub-recognizer (Figure 5 line 24)."""

    __slots__ = ("index", "recognizer")

    def __init__(self, index: int) -> None:
        self.index = index
        self.recognizer: ECRecognizer | None = None


class ECRecognizer:
    """Figure 5's ``class ECRecognizer`` for one element's content.

    Parameters
    ----------
    dag:
        ``DAG_T`` (built once per DTD via :func:`repro.core.dag.build_dag`).
    element:
        The element whose content is recognized (constructor argument ``e``).
    depth:
        The document-depth budget ``d``; each nested recognizer receives
        ``depth - 1`` and deep search stops when the budget is exhausted.
    """

    def __init__(
        self,
        dag: DtdDag,
        element: str,
        depth: int,
        mode: str = "refined",
    ) -> None:
        if mode not in ("refined", "verbatim"):
            raise ValueError(f"mode must be 'refined' or 'verbatim', not {mode!r}")
        self.dag_t = dag
        self.depth = depth
        self.mode = mode
        self.lookup_table: DTDAnalysis = dag.analysis
        self.element = element
        self._dag: ElementDag = dag.dag(element)
        #: Number of symbols this recognizer has accepted (refined rule 1).
        self.consumed = 0
        # Line 8: append children(r) to activeNodesSet.
        self.active: list[_ActiveNode] = [
            _ActiveNode(index) for index in sorted(self._dag.root_children())
        ]

    # -- convenience constructors -------------------------------------------

    @classmethod
    def for_dtd(
        cls,
        dtd: DTD,
        element: str | None = None,
        depth: int = DEFAULT_DEPTH_BOUND,
        mode: str = "refined",
    ) -> "ECRecognizer":
        """Build ``DAG_T`` (memoised) and return a recognizer for *element*."""
        dag = build_dag(dtd)
        return cls(dag, element if element is not None else dtd.root, depth, mode=mode)

    # -- Figure 5 ------------------------------------------------------------

    def validate(self, symbol: str) -> str:
        """Figure 5 lines 10-37: match one input symbol, return accept/reject."""
        dag = self._dag
        lookup = self.lookup_table.lookup
        result = _REJECT

        active = self.active
        present: set[int] = {node.index for node in active}
        next_round: list[_ActiveNode] = []
        next_present: set[int] = set()

        def append_children(of_index: int) -> None:
            """Line 35: append children(n) — examined later this round."""
            for child in sorted(dag.children(of_index)):
                if child not in present:
                    present.add(child)
                    active.append(_ActiveNode(child))

        def prepend_children(of_index: int) -> None:
            """Line 32: pre-pend children(n) — active from the next symbol.

            Deduplicate only against nodes already queued for the next
            round: a same-position node still active in *this* round may be
            about to die on the current symbol (skip path), and the match
            hypothesis must not be robbed of the position when it does.
            """
            for child in sorted(dag.children(of_index)):
                if child not in next_present:
                    next_present.add(child)
                    next_round.append(_ActiveNode(child))

        cursor = 0
        while cursor < len(active):
            node = active[cursor]
            position: Position = dag.position(node.index)
            if position.is_group:
                # Lines 13-21: star-group nodes.
                matched = False
                assert position.group is not None
                for member in position.group:
                    if symbol == member or lookup(member, symbol):
                        matched = True
                        break
                if matched:
                    result = _ACCEPT
                    cursor += 1  # node stays active (line 21 continue)
                    continue
            else:
                # Lines 23-28: deep search into a missing element.
                label = position.label
                assert label is not None and label != PCDATA
                if lookup(label, symbol):
                    if node.recognizer is None:
                        node.recognizer = ECRecognizer(
                            self.dag_t, label, self.depth - 1, mode=self.mode
                        )
                    if (
                        node.recognizer.depth > 0
                        and node.recognizer.validate(symbol) == _ACCEPT
                    ):
                        node.recognizer.consumed += 1
                        result = _ACCEPT
                        if self.mode == "refined" and not node.recognizer.active:
                            # Refined rule 2 (Example 4 prose): the missing
                            # element matched its last content — retire it.
                            present.discard(node.index)
                            del active[cursor]
                            prepend_children(node.index)
                            continue
                        cursor += 1  # node stays active (line 28 continue)
                        continue
                # Lines 29-33: direct match.  Refined rule 1: a position
                # occupied by a consuming missing-element hypothesis cannot
                # also be matched directly.
                occupied = (
                    self.mode == "refined"
                    and node.recognizer is not None
                    and node.recognizer.consumed > 0
                )
                if label == symbol and not occupied:
                    result = _ACCEPT
                    present.discard(node.index)
                    del active[cursor]
                    prepend_children(node.index)
                    continue
            # Lines 34-35: no match here — skip the node, try its children
            # for the *same* symbol.
            present.discard(node.index)
            del active[cursor]
            append_children(node.index)

        # Survivors of this round plus match-children become the next round's
        # active set; prepended children go first (document-order priority).
        self.active = next_round + active
        return result

    def recognize(self, symbols: Iterable[str]) -> str:
        """Figure 5 lines 38-43: validate each symbol, reject on first failure."""
        for symbol in symbols:
            if self.validate(symbol) == _REJECT:
                return _REJECT
        return _ACCEPT

    def accepts(self, symbols: Sequence[str]) -> bool:
        """Boolean convenience wrapper over :meth:`recognize`."""
        return self.recognize(symbols) == _ACCEPT
