"""The paper's contribution: potential-validity checking.

* :mod:`repro.core.dag` — the Section 4.2 DAG model ``DAG_T``,
* :mod:`repro.core.recognizer` — the Figure 5 ``ECRecognizer`` algorithm,
  transcribed faithfully (greedy active-node set, cached sub-recognizers,
  depth countdown),
* :mod:`repro.core.machine` — ``PVMachine``, an exact recognizer for the
  same problem that tracks the full hypothesis set as a graph-structured
  stack; the semantics reference for the kernel,
* :mod:`repro.core.tables` / :mod:`repro.core.kernel` — the machine's
  automata compiled to dense integer tables with bitmask state sets, and
  ``KernelMachine``/``KernelChecker`` running the same GSS semantics over
  them (with an optional native build); the library's production checker,
* :mod:`repro.core.pv` — Problem PV / Problem ECPV drivers over documents,
* :mod:`repro.core.incremental` — update-time checks (Theorem 2,
  Proposition 3, the O(1) character-data rules, markup insertion as two
  ECPV calls),
* :mod:`repro.core.witness` — minimal valid instance synthesis,
* :mod:`repro.core.completion` — constructive completion: compute the tag
  insertions that turn a potentially valid document into a valid one
  (regenerates Figure 3),
* :mod:`repro.core.classify` — Definition 6-8 DTD classification reports.
"""

from repro.core.pv import PVChecker, PVVerdict
from repro.core.recognizer import ECRecognizer
from repro.core.machine import PVMachine
from repro.core.kernel import KernelChecker, KernelMachine
from repro.core.tables import CompiledTables, compile_tables
from repro.core.classify import classify_dtd, ClassificationReport
from repro.core.witness import minimal_instance
from repro.core.completion import complete_document, CompletionError

__all__ = [
    "PVChecker",
    "PVVerdict",
    "ECRecognizer",
    "PVMachine",
    "KernelChecker",
    "KernelMachine",
    "CompiledTables",
    "compile_tables",
    "classify_dtd",
    "ClassificationReport",
    "minimal_instance",
    "complete_document",
    "CompletionError",
]
