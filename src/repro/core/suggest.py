"""Markup suggestions: which insertions does potential validity permit?

The editorial loop the paper motivates is not only *guarding* operations
but *offering* them: given a selected contiguous range of a node's
children, which element tags can legally wrap it?  And given a node, which
single insertions are possible at all?  Both reduce to Section 4's two-ECPV
rule evaluated over candidate element names, pre-filtered by the
reachability lookup table so the candidate set stays small:

* a wrap of a *non-empty* range by ``y`` requires every wrapped symbol to
  be equal to or embed-reachable from a symbol of ``r_y`` (Proposition 2's
  necessary condition), and ``y`` itself to be reachable from the parent
  (or directly present in its content model);
* a wrap of an *empty* range (inserting ``<y/>``) requires ``y`` to be
  insertable in the parent's content at that boundary.

The final verdict always runs the exact incremental check, so suggestions
are sound and complete over the candidate set; the filters only buy speed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import CheckerConfig, DEFAULT_CONFIG
from repro.core.incremental import IncrementalChecker
from repro.dtd.model import DTD, PCDATA
from repro.xmlmodel.delta import SIGMA
from repro.xmlmodel.tree import XmlElement, XmlText

__all__ = ["WrapSuggestion", "MarkupSuggester"]


@dataclass(frozen=True)
class WrapSuggestion:
    """One admissible wrap: ``<name>`` around children ``[start:end)``."""

    name: str
    start: int
    end: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{self.name}> around children [{self.start}:{self.end})"


class MarkupSuggester:
    """Computes admissible markup insertions for editor UIs."""

    def __init__(self, dtd: DTD, config: CheckerConfig = DEFAULT_CONFIG) -> None:
        self.dtd = dtd
        self.checker = IncrementalChecker(dtd, config=config)
        self.analysis = self.checker.checker.analysis

    # -- candidate filtering ----------------------------------------------------

    def _wrapped_symbols(self, parent: XmlElement, start: int, end: int) -> list[str]:
        symbols: list[str] = []
        for child in parent.children[start:end]:
            if isinstance(child, XmlText):
                if child.text and (not symbols or symbols[-1] != SIGMA):
                    symbols.append(SIGMA)
            else:
                symbols.append(child.name)
        return symbols

    def _candidate_names(
        self, parent: XmlElement, symbols: list[str]
    ) -> list[str]:
        """Names that pass the cheap reachability necessary-conditions."""
        analysis = self.analysis
        parent_regex_names = self.dtd.referenced_names(parent.name)
        candidates: list[str] = []
        for name in self.dtd.element_names():
            # y must be placeable under the parent at all.
            if name not in parent_regex_names and not analysis.can_embed(
                parent.name, name
            ):
                continue
            # Every wrapped symbol must fit inside y.
            def fits(symbol: str) -> bool:
                if symbol == SIGMA:
                    return analysis.can_embed(name, PCDATA) or self.dtd[
                        name
                    ].allows_pcdata_directly()
                return symbol in self.dtd.referenced_names(name) or analysis.can_embed(
                    name, symbol
                )

            if all(fits(symbol) for symbol in symbols):
                candidates.append(name)
        return candidates

    # -- public API ------------------------------------------------------------

    def wraps_for_range(
        self, parent: XmlElement, start: int, end: int
    ) -> list[str]:
        """Element names that may wrap children ``[start:end)`` of *parent*.

        Sound and complete: each returned name passes the exact two-ECPV
        incremental check (assuming the document is currently potentially
        valid, per Section 4's locality argument).
        """
        symbols = self._wrapped_symbols(parent, start, end)
        names: list[str] = []
        for name in self._candidate_names(parent, symbols):
            if self.checker.check_markup_insert(parent, start, end, name):
                names.append(name)
        return names

    def all_wraps(self, parent: XmlElement, max_span: int | None = None) -> list[WrapSuggestion]:
        """Every admissible wrap of any contiguous child range of *parent*.

        ``max_span`` caps the range width (editor UIs usually suggest for
        the current selection only; the exhaustive variant exists for tests
        and for the suggestion-coverage experiment).
        """
        suggestions: list[WrapSuggestion] = []
        count = len(parent.children)
        for start in range(count + 1):
            limit = count if max_span is None else min(count, start + max_span)
            for end in range(start, limit + 1):
                for name in self.wraps_for_range(parent, start, end):
                    suggestions.append(WrapSuggestion(name, start, end))
        return suggestions

    def text_insertion_points(self, parent: XmlElement) -> list[int]:
        """Child indices at which new character data may be inserted."""
        return [
            index
            for index in range(len(parent.children) + 1)
            if self.checker.check_text_insert(parent, index)
        ]
