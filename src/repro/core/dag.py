"""The Section 4.2 DAG model of a DTD.

For each element ``x`` the paper builds ``DAG_x``: a rooted directed acyclic
graph whose non-root nodes are *simple element nodes* (one per element
occurrence outside any star-group) and *star-group nodes* (one per
star-group), with edges joining each node to the adjacent (comma-separated)
nodes and ``|`` introducing branching.  Any root-to-leaf path spells a
production alternative of ``X̂``.

This is precisely the Glushkov position graph of the normalized
(Corollary 3.1) and star-group-flattened (Proposition 1) content model:

* ``children(root)`` = the automaton's *first* set,
* ``children(n)``    = the *follow* set of ``n``'s position,
* acyclicity follows because flattening leaves no ``*`` operators — each
  star-group is a single (self-absorbing) leaf position.

The paper stores one small graph per element instead of a single expanded
graph, and "plugs in" ``DAG_y`` on demand during deep search; we mirror that
by keeping per-element automata in one :class:`DtdDag` collection.

The machine layer additionally needs completion metadata the paper's
usability assumption hides: which positions can be *silently inserted*
(a complete valid subtree synthesized from nothing — requires a productive
element) and from which positions the remainder of the content model is
completable (:attr:`ElementDag.can_finish`).  With every element usable,
all of these are trivially true, matching the paper.

Two automata per element
------------------------
Corollary 3.1 (drop ``?``, ``+`` to ``*``) and Proposition 1 (star-group
flattening) are proved **under the usability assumption** — with
unproductive elements ``(dead?, ok)`` and ``(dead, ok)`` have different PV
languages.  So each :class:`ElementDag` carries

* the *flattened* automaton (normalized + star-grouped): the paper's
  ``DAG_x``, consumed by the faithful Figure-5 ECRecognizer, and
* the *exact* automaton, built from the **original** content model, where
  ``*``/``+`` loops appear as ordinary Glushkov follow edges: consumed by
  the exact PVMachine, correct for arbitrary DTDs.

For usable DTDs the two give identical verdicts (property-tested), which is
precisely the empirical content of Corollary 3.1 / Proposition 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.dtd.analysis import DTDAnalysis, analyze
from repro.dtd.model import DTD, PCDATA
from repro.dtd.stargroups import flattened_content
from repro.grammar.glushkov import GlushkovAutomaton, Position, build_glushkov

__all__ = ["ElementDag", "DtdDag", "build_dag"]

#: Pseudo-position index for "at the root, nothing consumed yet".
ENTRY: int = -1


@dataclass(frozen=True)
class PositionTables:
    """One content-model automaton plus its silent-completion metadata.

    Attributes
    ----------
    automaton:
        The Glushkov automaton, or ``None`` for ``EMPTY`` content.
    insertable:
        Per-position: may the position be satisfied *silently*, i.e. without
        consuming any document token?  Star-groups and ``#PCDATA`` always
        can; a simple element position can iff its element is productive.
    can_finish:
        Per-position: once this position has just been matched, can the rest
        of the content model be satisfied using silent insertions only?
        Used by exact acceptance; trivially all-true for usable DTDs.
    entry_can_finish:
        ``can_finish`` for the virtual entry position (nothing consumed).
    """

    automaton: GlushkovAutomaton | None
    insertable: tuple[bool, ...]
    can_finish: tuple[bool, ...]
    entry_can_finish: bool

    def root_children(self) -> frozenset[int]:
        """``children(root)``: the first positions."""
        if self.automaton is None:
            return frozenset()
        return self.automaton.first

    def children(self, index: int) -> frozenset[int]:
        """``children(n)``: the follow positions of *index* (ENTRY = root)."""
        if self.automaton is None:
            return frozenset()
        if index == ENTRY:
            return self.automaton.first
        return self.automaton.follow[index]

    def position(self, index: int) -> Position:
        assert self.automaton is not None
        return self.automaton.position(index)

    def finishable_from(self, index: int) -> bool:
        """``can_finish`` with the ENTRY pseudo-position handled."""
        if index == ENTRY:
            return self.entry_can_finish
        return self.can_finish[index]


@dataclass(frozen=True)
class ElementDag(PositionTables):
    """``DAG_x``: the paper's flattened position graph, plus the exact tables.

    The inherited fields are the *flattened* (Cor 3.1 + Prop 1) model — the
    paper's ``DAG_x`` consumed by the Figure-5 ECRecognizer.  ``exact``
    carries the original-model automaton consumed by the PVMachine.
    """

    element: str = ""
    exact: PositionTables | None = None

    @property
    def exact_tables(self) -> PositionTables:
        assert self.exact is not None
        return self.exact


class DtdDag:
    """``DAG_T``: the union of all per-element DAGs, plus shared analysis."""

    __slots__ = ("dtd", "analysis", "_dags")

    def __init__(self, dtd: DTD) -> None:
        self.dtd = dtd
        self.analysis: DTDAnalysis = analyze(dtd)
        self._dags: dict[str, ElementDag] = {
            name: _build_element_dag(dtd, name, self.analysis)
            for name in dtd.element_names()
        }

    def dag(self, element: str) -> ElementDag:
        """``DAG_x`` for element *element*."""
        return self._dags[element]

    def __iter__(self):
        return iter(self._dags.values())

    def total_positions(self) -> int:
        """Total position count across all element DAGs (≈ the paper's k)."""
        return sum(
            dag.automaton.size for dag in self if dag.automaton is not None
        )


def _position_insertable(position: Position, productive: frozenset[str]) -> bool:
    if position.is_group:
        return True
    if position.label == PCDATA:
        return True  # an empty text run satisfies a #PCDATA slot silently
    assert position.label is not None
    return position.label in productive


def _build_tables(
    model, analysis: DTDAnalysis
) -> PositionTables:
    """Glushkov automaton + insertable/can_finish tables for one model."""
    if model is None:
        return PositionTables(
            automaton=None, insertable=(), can_finish=(), entry_can_finish=True
        )
    automaton = build_glushkov(model)
    insertable = tuple(
        _position_insertable(position, analysis.productive)
        for position in automaton.positions
    )
    # can_finish: backward fixpoint over the follow relation (which may be
    # cyclic for the exact automaton — the fixpoint handles both).
    can_finish = [index in automaton.last for index in range(automaton.size)]
    changed = True
    while changed:
        changed = False
        for index in range(automaton.size):
            if can_finish[index]:
                continue
            for successor in automaton.follow[index]:
                if insertable[successor] and can_finish[successor]:
                    can_finish[index] = True
                    changed = True
                    break
    entry_can_finish = automaton.nullable or any(
        insertable[index] and can_finish[index] for index in automaton.first
    )
    return PositionTables(
        automaton=automaton,
        insertable=insertable,
        can_finish=tuple(can_finish),
        entry_can_finish=entry_can_finish,
    )


def _build_element_dag(dtd: DTD, name: str, analysis: DTDAnalysis) -> ElementDag:
    flattened = _build_tables(flattened_content(dtd, name), analysis)
    exact = _build_tables(dtd.content_regex(name), analysis)
    return ElementDag(
        automaton=flattened.automaton,
        insertable=flattened.insertable,
        can_finish=flattened.can_finish,
        entry_can_finish=flattened.entry_can_finish,
        element=name,
        exact=exact,
    )


@lru_cache(maxsize=128)
def build_dag(dtd: DTD) -> DtdDag:
    """Build (and memoise) ``DAG_T`` for *dtd*."""
    return DtdDag(dtd)
