"""The table-driven verdict kernel: dispatch seam and checker surface.

The kernel is the fourth (and fastest) backend of the exactness ladder:
the merged-GSS semantics of :class:`~repro.core.machine.PVMachine`
recompiled over the dense integer tables of :mod:`repro.core.tables`.
It is exact and unbounded for every DTD class — the differential suite
pins ``kernel ≡ machine ≡ earley`` on the full random-DTD corpus.

Native build seam
-----------------
The hot loop lives in :mod:`repro.core._kernel_impl`, written to compile
cleanly with Cython.  ``tools/build_native_kernel.py`` (run by the CI
kernel job; never required locally) compiles a copy of that module as
``repro.core._kernel_native`` and drops the extension into this package.
This module imports the native build when present and silently falls
back to the pure-python implementation otherwise, so the kernel backend
works — at full exactness, just without the extra constant factor — on
a bare checkout with no compiler and no third-party packages.  Set
``REPRO_KERNEL_PURE=1`` to force the fallback even when the extension
is installed (the CI job uses this to prove both paths agree).
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING

from repro.config import CheckerConfig, DEFAULT_CONFIG
from repro.core.pv import PVChecker
from repro.dtd.model import DTD

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (service -> core)
    from repro.service.compiled import CompiledSchema

__all__ = [
    "KernelMachine",
    "KernelChecker",
    "kernel_machine_for_dtd",
    "NATIVE",
    "IMPLEMENTATION",
]

if os.environ.get("REPRO_KERNEL_PURE"):
    from repro.core import _kernel_impl as _impl

    NATIVE = False
else:
    try:
        from repro.core import _kernel_native as _impl  # type: ignore[attr-defined]

        NATIVE = True
    except ImportError:
        from repro.core import _kernel_impl as _impl

        NATIVE = False

#: "native" when the compiled extension is live, else "pure".
IMPLEMENTATION: str = "native" if NATIVE else "pure"

KernelMachine = _impl.KernelMachine


def kernel_machine_for_dtd(dtd: DTD, element: str | None = None) -> "KernelMachine":
    """A :class:`KernelMachine` straight from a DTD (tests/examples).

    Production paths should go through a
    :class:`~repro.service.compiled.CompiledSchema` instead, whose
    ``tables`` property carries the compiled tables inside the pickled
    artifact.
    """
    from repro.core.dag import build_dag
    from repro.core.tables import compile_tables

    tables = compile_tables(build_dag(dtd))
    return KernelMachine(tables, element if element is not None else dtd.root)


class KernelChecker(PVChecker):
    """A :class:`PVChecker` pinned to the kernel backend.

    Identical result surface (``check_content`` / ``check_document`` /
    ``PVVerdict``); exists so callers holding a compiled artifact can ask
    for the fast exact backend without threading algorithm strings.
    """

    def __init__(
        self,
        dtd: DTD,
        config: CheckerConfig = DEFAULT_CONFIG,
        *,
        compiled: "CompiledSchema | None" = None,
    ) -> None:
        super().__init__(dtd, config=config, algorithm="kernel", compiled=compiled)

    @classmethod
    def from_compiled(
        cls,
        compiled: "CompiledSchema",
        config: CheckerConfig = DEFAULT_CONFIG,
        algorithm: str = "kernel",
    ) -> "KernelChecker":
        if algorithm != "kernel":
            raise ValueError("KernelChecker only runs the kernel backend")
        return cls(compiled.dtd, config=config, compiled=compiled)
