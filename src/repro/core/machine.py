"""PVMachine: an exact recognizer for Problem ECPV.

The paper's ECRecognizer (Figure 5) is greedy: it merges hypotheses into a
single active-node set and commits to deep matches, which keeps it linear
but can lose alternatives (finding F-A1).  ``PVMachine`` decides the same
problem *exactly* by simulating the full nondeterministic machine with a
graph-structured stack (GSS).

GSS structure
-------------
Nodes represent facts about the current token round:

* a **consumption** node ``(element, position)`` — the round's token was
  consumed at that position of an (actual or hypothesized) ``element``;
* a **continuation** node ``(element, position)`` — that position is
  occupied by a hypothesized *missing* child element currently absorbing
  tokens; matching resumes here when the insertion closes;
* an **entry** node ``(element, ENTRY)`` — a freshly hypothesized missing
  element, about to absorb the round's token.

A node's *parents* are its stack continuations one level up; the bottom of
every stack is a shared sentinel.  Nodes with the same key within a round
**merge** (parent sets union) — consumption and continuation nodes are
keyed apart because they assign the round's token differently, and merging
them could fabricate inconsistent histories.

Merging is what keeps the machine polynomial *and* what makes it strictly
stronger than the paper's algorithm: a descend chain that re-reaches the
same entry node adds a parent edge instead of recursing, so PV-strong
recursion (Definition 7) shows up as a **cycle in the GSS** — a finite
representation of unboundedly deep insertion stacks.  The default machine
is therefore an exact, **unbounded** decider for every DTD class; no depth
bound is needed for termination.  (``depth=D`` selects the legacy chain
mode implementing the paper's Section 4.3.1 bounded semantics — used by
the depth-sensitivity tests and benchmarks; chain mode can be exponential
in ``D`` on recursive DTDs, merged mode never is.)

The machine runs on the **original** content models: ``*``/``+`` repetition
appears as ordinary Glushkov follow-loops.  That forgoes the
Corollary 3.1/Proposition 1 simplifications — which are only sound under
the paper's usability assumption — so the machine stays exact for arbitrary
DTDs, including ones with unproductive elements; skip/descend/acceptance
are guarded by productivity (``insertable``/``can_finish`` tables).

Acceptance after the last token requires some consumption node with a
root-ward path of silently-finishable nodes — for usable DTDs this is
automatic, recovering the paper's "stop anywhere" rule (Theorem 3).

Complexity positioning
----------------------
Exact potential validity is context-free-language recognition (Theorem 1),
so no exact recognizer can be linear in the adversarial case; the paper's
linear bound is bought by greediness (and the F-A1 over-acceptances).  The
merged machine allocates O(k) nodes per token, but on highly ambiguous
content (e.g. one node with hundreds of mixed-content children under a
recursive DTD) the GSS edge count grows with the token index and the
ancestor walk makes a round super-linear — the same regime where Earley
degrades.  For realistic documents — many nodes of small width — Problem
PV costs one machine run per node and is effectively linear in document
size, which is what benchmark E1 measures.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.config import MACHINE_NODE_LIMIT
from repro.core.dag import ENTRY, DtdDag, PositionTables, build_dag
from repro.dtd.analysis import DTDAnalysis
from repro.dtd.model import DTD, PCDATA
from repro.errors import PVError

__all__ = ["Node", "PVMachine"]


class Node:
    """One GSS node; see the module docstring."""

    __slots__ = (
        "element",
        "position",
        "parents",
        "sources",
        "nesting",
        "_parent_ids",
        "_source_ids",
    )

    def __init__(self, element: str | None, position: int, nesting: int = 0) -> None:
        self.element = element  # None marks the stack-bottom sentinel
        self.position = position
        #: Direct stack parents (one level up); final after the round ends.
        self.parents: list[Node] = []
        #: Frames whose (possibly still-growing) parent sets this node
        #: inherits; resolved into ``parents`` when the round is frozen.
        self.sources: list[Node] = []
        self.nesting = nesting  # chain mode only
        self._parent_ids: set[int] = set()
        self._source_ids: set[int] = set()

    @property
    def is_bottom(self) -> bool:
        return self.element is None

    def add_parent(self, parent: "Node") -> None:
        marker = id(parent)
        if marker not in self._parent_ids:
            self._parent_ids.add(marker)
            self.parents.append(parent)

    def add_source(self, frame: "Node") -> None:
        marker = id(frame)
        if marker not in self._source_ids:
            self._source_ids.add(marker)
            self.sources.append(frame)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.is_bottom:
            return "Node(⊥)"
        where = "entry" if self.position == ENTRY else f"pos{self.position}"
        return f"Node({self.element}@{where})"


class PVMachine:
    """Exact ECPV recognizer for one element's content.

    Parameters
    ----------
    dag:
        ``DAG_T`` for the DTD (the machine uses its exact tables).
    element:
        The element whose content is being checked.
    depth:
        ``None`` (default) — exact unbounded decision via GSS merging.
        An integer ``D`` — the paper's bounded semantics: hypothesized
        missing-element nesting is cut at ``D`` (chain mode, no merging).
    """

    def __init__(self, dag: DtdDag, element: str, depth: int | None = None) -> None:
        self.dag_t = dag
        self.analysis: DTDAnalysis = dag.analysis
        self.element = element
        self.depth = depth
        self._merged = depth is None
        self._round_nodes: dict[tuple[str, str, int], Node] = {}
        # Per-round replay table: once a (element, position) frame key has
        # been matched against the round's token, further frames with the
        # same key contribute nothing new positionally — they only widen
        # the stack contexts.  Each key maps to (frames, targets); every
        # frame is a source of every target, maintained symmetrically so
        # registration order cannot drop pairs.  This keeps per-round match
        # work at O(distinct keys) = O(k) even when the reachable ancestor
        # graph is large.
        self._key_replay: dict[tuple[str, int], tuple[list[Node], list[Node]]] = {}
        self._fresh: list[Node] = []
        self._closure_cache: dict[tuple[str, int], frozenset[int]] = {}
        self._allocated = 0
        self._bottom = Node(None, ENTRY)
        root = self._new_node(element, ENTRY)
        root.parents.append(self._bottom)
        self.leaves: list[Node] = [root]
        self.rejected_at: int | None = None
        self._consumed = 0

    @classmethod
    def for_dtd(
        cls, dtd: DTD, element: str | None = None, depth: int | None = None
    ) -> "PVMachine":
        dag = build_dag(dtd)
        return cls(dag, element if element is not None else dtd.root, depth)

    def _tables(self, element: str) -> PositionTables:
        return self.dag_t.dag(element).exact_tables

    # -- node store -----------------------------------------------------------

    def _new_node(self, element: str, position: int, nesting: int = 0) -> Node:
        self._allocated += 1
        if self._allocated > MACHINE_NODE_LIMIT:
            raise PVError(
                "PVMachine exceeded its node allocation limit; "
                "use the default unbounded (merged) mode for this input"
            )
        return Node(element, position, nesting)

    def _round_node(
        self, tag: str, element: str, position: int
    ) -> tuple[Node, bool]:
        """Intern a (tag, element, position) node for the current round."""
        key = (tag, element, position)
        node = self._round_nodes.get(key)
        if node is None:
            node = self._new_node(element, position)
            self._round_nodes[key] = node
            self._fresh.append(node)
            return node, True
        return node, False

    # -- position closures -----------------------------------------------------

    def _silent_closure(self, element: str, position: int) -> frozenset[int]:
        """Positions eligible for the next match after *position*.

        Starts from the follow set (or the first set at ENTRY) and extends
        through positions that can be *silently* satisfied: productive
        elements (a synthesized complete subtree) and ``#PCDATA`` slots
        (an empty text run).  Star repetition needs no special case — a
        repeatable position follows itself in the Glushkov automaton.
        """
        key = (element, position)
        cached = self._closure_cache.get(key)
        if cached is not None:
            return cached
        tables = self._tables(element)
        if tables.automaton is None:
            result: frozenset[int] = frozenset()
            self._closure_cache[key] = result
            return result
        start = set(tables.children(position))
        eligible = set(start)
        stack = [index for index in start if tables.insertable[index]]
        seen = set(stack)
        while stack:
            index = stack.pop()
            for successor in tables.children(index):
                if successor not in eligible:
                    eligible.add(successor)
                if tables.insertable[successor] and successor not in seen:
                    seen.add(successor)
                    stack.append(successor)
        result = frozenset(eligible)
        self._closure_cache[key] = result
        return result

    # -- token matching -------------------------------------------------------

    def _match_from(self, frame: Node, symbol: str, out: dict[int, Node]) -> None:
        """Consume *symbol* at (or below) *frame*'s eligible positions."""
        assert frame.element is not None
        if self._merged:
            key = (frame.element, frame.position)
            recorded = self._key_replay.get(key)
            if recorded is not None:
                # Same positional exploration already done (or in progress)
                # this round: the produced nodes are already in `out`/the
                # store; this frame only contributes additional stack
                # contexts.  Registering it here also covers targets that
                # are appended later in the original exploration.
                frames, targets = recorded
                frames.append(frame)
                for node in targets:
                    node.add_source(frame)
                return
            frames = [frame]
            targets = []
            self._key_replay[key] = (frames, targets)
        else:
            frames = [frame]
            targets = []
        tables = self._tables(frame.element)
        if tables.automaton is None:
            return
        can_embed = self.analysis.can_embed
        for index in self._silent_closure(frame.element, frame.position):
            position = tables.position(index)
            label = position.label
            assert label is not None  # exact automata have no group positions
            if label == symbol:
                self._emit(frames, index, out, targets)
            if label != PCDATA and can_embed(label, symbol):
                self._descend(frames, index, label, symbol, out, targets)

    def _emit(
        self,
        frames: list[Node],
        index: int,
        out: dict[int, Node],
        targets: list[Node],
    ) -> None:
        """Record consumption at (element, index) for all *frames*' stacks."""
        frame = frames[0]
        assert frame.element is not None
        if self._merged:
            node, _created = self._round_node("leaf", frame.element, index)
            for registered in frames:
                node.add_source(registered)
            targets.append(node)
            out[id(node)] = node
        else:
            node = self._new_node(frame.element, index, frame.nesting)
            node.parents.extend(frame.parents)
            out[id(node)] = node

    def _descend(
        self,
        frames: list[Node],
        index: int,
        label: str,
        symbol: str,
        out: dict[int, Node],
        targets: list[Node],
    ) -> None:
        """Hypothesize a missing <label> at position *index* of the frames."""
        frame = frames[0]
        assert frame.element is not None
        if self._merged:
            continuation, _ = self._round_node("cont", frame.element, index)
            for registered in frames:
                continuation.add_source(registered)
            targets.append(continuation)
            child, created = self._round_node("entry", label, ENTRY)
            child.add_parent(continuation)
            if created:
                self._match_from(child, symbol, out)
        else:
            assert self.depth is not None
            if frame.nesting + 1 > self.depth:
                return
            continuation = self._new_node(frame.element, index, frame.nesting)
            continuation.parents.extend(frame.parents)
            child = self._new_node(label, ENTRY, frame.nesting + 1)
            child.parents.append(continuation)
            self._match_from(child, symbol, out)

    # -- round bookkeeping ---------------------------------------------------------

    def _freeze_round(self) -> None:
        """Resolve source-frame parent inheritance into direct parent lists.

        Leaf/continuation nodes copy their source frames' parents only once
        the round is over, so entry-node merges that happened *after* a
        node's creation are not lost.
        """
        for node in self._fresh:
            if node.sources:
                for frame in node.sources:
                    for parent in frame.parents:
                        node.add_parent(parent)
                node.sources = []
        self._fresh = []
        self._round_nodes = {}
        self._key_replay = {}

    # -- public stepping API ------------------------------------------------------

    def step(self, symbol: str) -> bool:
        """Feed one token; returns ``False`` when no hypothesis survives."""
        if self.rejected_at is not None:
            return False
        out: dict[int, Node] = {}
        explored: set[int] = set()
        for leaf in self.leaves:
            stack = [leaf]
            while stack:
                frame = stack.pop()
                marker = id(frame)
                if marker in explored:
                    continue
                explored.add(marker)
                self._match_from(frame, symbol, out)
                # Moving to a parent abandons this frame: its remaining
                # content must be silently completable.
                if self._tables(frame.element).finishable_from(frame.position):
                    for parent in frame.parents:
                        if not parent.is_bottom:
                            stack.append(parent)
        if self._merged:
            self._freeze_round()
        self.leaves = list(out.values())
        self._consumed += 1
        if not self.leaves:
            self.rejected_at = self._consumed - 1
            return False
        return True

    def accepts_now(self) -> bool:
        """Would stopping here be accepted? (A root-ward finishable path.)"""
        if self.rejected_at is not None:
            return False
        return any(self._finishable_up(leaf, set()) for leaf in self.leaves)

    def _finishable_up(self, node: Node, visiting: set[int]) -> bool:
        if node.is_bottom:
            return True
        if not self._tables(node.element).finishable_from(node.position):
            return False
        marker = id(node)
        if marker in visiting:
            return False  # a cycle contributes no finite closing path
        visiting.add(marker)
        try:
            return any(
                self._finishable_up(parent, visiting) for parent in node.parents
            )
        finally:
            visiting.discard(marker)

    def recognize(self, symbols: Iterable[str]) -> bool:
        """Decide ECPV for the token sequence *symbols*."""
        for symbol in symbols:
            if not self.step(symbol):
                return False
        return self.accepts_now()

    def accepts(self, symbols: Sequence[str]) -> bool:
        """Alias of :meth:`recognize` mirroring the ECRecognizer API."""
        return self.recognize(symbols)

    @property
    def allocated_nodes(self) -> int:
        """Total GSS nodes allocated (benchmark instrumentation)."""
        return self._allocated
