"""Dense integer transition tables for the verdict kernel.

The exact :class:`~repro.core.machine.PVMachine` walks dict-of-frozenset
Glushkov follow relations, interning labels as strings and consulting the
analysis' ``can_embed`` table per position per token.  This module compiles
all of that — once per :class:`~repro.service.compiled.CompiledSchema` —
into the densest structures CPython indexes fast:

* **interned tag ids** — every element name (plus the ``#PCDATA``/sigma
  sentinel) becomes a small integer, so the hot loop never compares
  strings;
* **flat ``array('l')`` maps** — per position: the interned label id and
  the element id a descend would hypothesize (``-1`` for ``#PCDATA``);
* **state sets as int bitmasks** — first/follow/silent-closure/can-finish
  sets become Python ints, so a token round is bitwise ``&`` plus a
  lowest-set-bit loop instead of set iteration.  Python ints are
  arbitrary-width, so automata with more than 63 positions work
  unchanged (covered by the bitmask-width tests).

The silent closures the machine computes lazily per checker instance are
precomputed here for *every* ``(element, position)`` pair, moving that
repeated cost into the one-time schema compile the registry amortizes.

Everything in this module is plain data (ints, arrays, dicts, tuples):
the tables pickle cheaply, ride inside the artifact-store format
(version 2) and the ring's ``put-artifact`` wire blobs, and are shared
read-only across threads and worker processes.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass, field

from repro.core.dag import ENTRY, DtdDag, PositionTables
from repro.dtd.model import PCDATA

__all__ = ["ElementTables", "CompiledTables", "compile_tables"]


@dataclass(frozen=True)
class ElementTables:
    """One element's content automaton in dense form.

    Positions are the exact (original content model) Glushkov positions;
    bit ``i`` of every mask refers to position ``i``.  ``closures[0]`` is
    the ENTRY closure (nothing consumed yet); ``closures[i + 1]`` belongs
    to position ``i`` — the ``+ 1`` slot shift keeps the virtual ENTRY
    position (index ``-1``) addressable without a dict.

    Attributes
    ----------
    element_id:
        The interned id of this element (its index in
        :attr:`CompiledTables.elements`).
    size:
        Number of automaton positions (0 for ``EMPTY`` content).
    closures:
        Per ``(position + 1)``: the silent-completion closure as a
        bitmask — every position eligible to match the next token.
    match_masks:
        Per interned symbol id: the positions whose label *is* that
        symbol.  Missing ids match nowhere.
    embed_masks:
        Per interned symbol id: the positions whose (element) label can
        embed that symbol somewhere strictly inside an inserted subtree —
        the descend candidates.  Missing ids descend nowhere.
    pos_label / pos_elem:
        Flat per-position maps: the interned label id, and the element id
        a descend at the position would hypothesize (``-1`` for
        ``#PCDATA`` positions, which are never descended into).
    fin_mask:
        Positions from which the rest of the content model is silently
        completable (the machine's ``can_finish`` as one int).
    entry_fin:
        ``can_finish`` for the virtual ENTRY position.
    """

    element_id: int
    size: int
    closures: tuple[int, ...]
    match_masks: dict[int, int]
    embed_masks: dict[int, int]
    pos_label: array
    pos_elem: array
    fin_mask: int
    entry_fin: bool


@dataclass(frozen=True)
class CompiledTables:
    """All per-element tables plus the interned symbol space.

    Attributes
    ----------
    symbols:
        Interned symbol names: element names in declaration order, then
        the ``#PCDATA`` sentinel last.  ``symbols[i]`` has id ``i``.
    sid:
        The reverse map, name → id.  Tokens not in it (undeclared
        elements in a document) have no transitions anywhere.
    elements:
        Per element id: that element's :class:`ElementTables`.
    sigma_id:
        The id of the ``#PCDATA``/sigma sentinel.
    root_id:
        The id of the DTD's designated root element.
    emissions:
        Runtime-only memo shared by every :class:`KernelMachine` over
        these tables: packed ``(element, position, symbol)`` key → the
        key's emission lists (match indices, descend ``(index, child)``
        pairs), which are document-independent.  Bounded by positions ×
        symbols; never pickled (artifacts stay deterministic), starts
        empty in every unpickling process.
    """

    symbols: tuple[str, ...]
    sid: dict[str, int] = field(repr=False)
    elements: tuple[ElementTables, ...] = field(repr=False)
    sigma_id: int
    root_id: int
    emissions: dict = field(default_factory=dict, repr=False, compare=False)

    def __getstate__(self):
        state = self.__dict__.copy()
        state["emissions"] = {}
        return state

    def __setstate__(self, state):
        state.setdefault("emissions", {})
        self.__dict__.update(state)

    def element(self, name: str) -> ElementTables:
        """The tables of element *name* (KeyError for undeclared names)."""
        return self.elements[self.sid[name]]

    @property
    def total_positions(self) -> int:
        """Total automaton positions across all elements (≈ the paper's k)."""
        return sum(tables.size for tables in self.elements)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CompiledTables({len(self.elements)} element(s), "
            f"{self.total_positions} position(s))"
        )


def _silent_closure(tables: PositionTables, position: int) -> frozenset[int]:
    """The machine's ``_silent_closure`` computed eagerly for one position."""
    if tables.automaton is None:
        return frozenset()
    start = set(tables.children(position))
    eligible = set(start)
    stack = [index for index in start if tables.insertable[index]]
    seen = set(stack)
    while stack:
        index = stack.pop()
        for successor in tables.children(index):
            eligible.add(successor)
            if tables.insertable[successor] and successor not in seen:
                seen.add(successor)
                stack.append(successor)
    return frozenset(eligible)


def _mask(indices) -> int:
    result = 0
    for index in indices:
        result |= 1 << index
    return result


def compile_tables(dag: DtdDag) -> CompiledTables:
    """Compile ``DAG_T``'s exact automata into dense kernel tables."""
    dtd = dag.dtd
    analysis = dag.analysis
    names = tuple(dtd.element_names())
    symbols = names + (PCDATA,)
    sid = {name: index for index, name in enumerate(symbols)}
    sigma_id = sid[PCDATA]

    elements: list[ElementTables] = []
    for name in names:
        element_id = sid[name]
        tables = dag.dag(name).exact_tables
        automaton = tables.automaton
        size = automaton.size if automaton is not None else 0

        closures = [_mask(_silent_closure(tables, ENTRY))]
        for index in range(size):
            closures.append(_mask(_silent_closure(tables, index)))

        pos_label = array("l")
        pos_elem = array("l")
        match_masks: dict[int, int] = {}
        embed_masks: dict[int, int] = {}
        for index in range(size):
            position = automaton.position(index)
            label = position.label
            assert label is not None  # exact automata have no group positions
            label_id = sid[label]
            pos_label.append(label_id)
            pos_elem.append(-1 if label == PCDATA else label_id)
            match_masks[label_id] = match_masks.get(label_id, 0) | (1 << index)
            if label != PCDATA:
                for target in analysis.embed_reach.get(label, frozenset()):
                    target_id = sid.get(target)
                    if target_id is None:
                        continue
                    embed_masks[target_id] = (
                        embed_masks.get(target_id, 0) | (1 << index)
                    )

        fin_mask = _mask(
            index for index in range(size) if tables.can_finish[index]
        )
        elements.append(
            ElementTables(
                element_id=element_id,
                size=size,
                closures=tuple(closures),
                match_masks=match_masks,
                embed_masks=embed_masks,
                pos_label=pos_label,
                pos_elem=pos_elem,
                fin_mask=fin_mask,
                entry_fin=tables.entry_can_finish,
            )
        )

    return CompiledTables(
        symbols=symbols,
        sid=sid,
        elements=tuple(elements),
        sigma_id=sigma_id,
        root_id=sid[dtd.root],
    )
