"""Problem PV and Problem ECPV drivers.

Section 4's observation: solving Problem PV (is the whole document
potentially valid?) reduces to solving Problem ECPV (is this node's child
sequence a potentially valid content?) at **every** element node, because
extensions never move existing nodes across element boundaries — each
node's children are wrapped independently.  The differential test suite
verifies this decomposition against the whole-document Earley baseline on
``G'_{T,r}``.

:class:`PVChecker` is the public entry point; it supports four backends:

* ``"machine"`` — the exact :class:`~repro.core.machine.PVMachine` (default),
* ``"kernel"`` — the same merged-GSS semantics over the dense integer
  tables of :mod:`repro.core.tables` (exact, unbounded, fastest),
* ``"figure5"`` — the paper's greedy :class:`~repro.core.recognizer.ECRecognizer`,
* ``"earley"`` — the per-node content-grammar Earley reference (exact but
  slow; the paper's Section 3.3 baseline).

Checkers do not compile schemas themselves: construction resolves the DTD
through the process-wide :class:`~repro.service.registry.SchemaRegistry`
(or uses an explicitly supplied
:class:`~repro.service.compiled.CompiledSchema`), so building many
checkers over one schema pays the analysis/DAG/grammar cost once.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Literal, Sequence

from repro.config import CheckerConfig, DEFAULT_CONFIG
from repro.core.dag import DtdDag
from repro.core.machine import PVMachine
from repro.core.recognizer import ECRecognizer
from repro.dtd.analysis import DTDClass
from repro.dtd.model import DTD
from repro.errors import DepthBoundExceeded, UnusableElementError
from repro.grammar.build import content_nonterminal
from repro.xmlmodel.delta import content_symbols
from repro.xmlmodel.fastlex import parser_backend
from repro.xmlmodel.tree import XmlDocument, XmlElement

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (service -> core)
    from repro.service.compiled import CompiledSchema

__all__ = ["Algorithm", "NodeFailure", "PVVerdict", "PVChecker"]

Algorithm = Literal["machine", "kernel", "figure5", "earley"]

# Resolved on first kernel-backend use: repro.core.kernel subclasses
# PVChecker, so a top-level import would be circular.
_kernel_machine_cls = None


def _kernel_machine():
    global _kernel_machine_cls
    if _kernel_machine_cls is None:
        from repro.core.kernel import KernelMachine

        _kernel_machine_cls = KernelMachine
    return _kernel_machine_cls


@dataclass(frozen=True)
class NodeFailure:
    """One node at which Problem ECPV answered "no"."""

    path: str
    element: str
    symbols: tuple[str, ...]
    reason: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.path} <{self.element}>: {self.reason}"


@dataclass(frozen=True)
class PVVerdict:
    """The answer to Problem PV for one document.

    Attributes
    ----------
    potentially_valid:
        The verdict.
    failures:
        Every node whose content check failed (empty when valid).
    depth_limited:
        True when the verdict is "no", the DTD is PV-strong recursive and
        the configured depth bound may therefore have cut a witness — i.e.
        the precise reading is "not potentially valid within the bound".
    """

    potentially_valid: bool
    failures: tuple[NodeFailure, ...] = field(default=())
    depth_limited: bool = False

    def __bool__(self) -> bool:
        return self.potentially_valid


class PVChecker:
    """Checks documents and contents for potential validity w.r.t. one DTD."""

    def __init__(
        self,
        dtd: DTD,
        config: CheckerConfig = DEFAULT_CONFIG,
        algorithm: Algorithm = "machine",
        *,
        compiled: "CompiledSchema | None" = None,
    ) -> None:
        if compiled is None:
            # Lazy import: repro.service sits above repro.core in the layer
            # map and imports this module.
            from repro.service.registry import DEFAULT_REGISTRY

            compiled = DEFAULT_REGISTRY.get(dtd)
        elif dtd is not None and dtd is not compiled.dtd and dtd != compiled.dtd:
            raise ValueError(
                "compiled artifact does not match the given DTD "
                f"(artifact is for {compiled.dtd!r})"
            )
        self.compiled = compiled
        self.dtd = dtd if dtd is not None else compiled.dtd
        self.config = config
        self.algorithm: Algorithm = algorithm
        self.analysis = compiled.analysis
        if config.require_usable and not self.analysis.all_usable:
            raise UnusableElementError(tuple(self.analysis.unusable))
        self.dag: DtdDag = compiled.dag
        self._is_strong = self.analysis.dtd_class is DTDClass.PV_STRONG_RECURSIVE
        #: Depth used by the Figure-5 recognizer (which always needs one).
        self.depth = config.resolved_depth(self.dtd.element_count, self._is_strong)
        #: Depth for the exact machine: ``None`` (unbounded, exact for all
        #: DTD classes thanks to GSS merging) unless the caller explicitly
        #: requested the paper's bounded semantics.
        self.machine_depth: int | None = config.depth_bound

    @classmethod
    def from_compiled(
        cls,
        compiled: "CompiledSchema",
        config: CheckerConfig = DEFAULT_CONFIG,
        algorithm: Algorithm = "machine",
    ) -> "PVChecker":
        """A checker over an artifact obtained from a registry or pickle."""
        return cls(compiled.dtd, config=config, algorithm=algorithm, compiled=compiled)

    # -- Problem ECPV --------------------------------------------------------

    def check_content(self, element: str, symbols: Sequence[str]) -> bool:
        """Problem ECPV: is *symbols* a potentially valid content of *element*?

        *symbols* is a ``Delta_T`` output: element names and
        :data:`~repro.xmlmodel.delta.SIGMA` markers.
        """
        if self.algorithm == "machine":
            return PVMachine(self.dag, element, self.machine_depth).recognize(symbols)
        if self.algorithm == "kernel":
            machine = _kernel_machine()(self.compiled.tables, element)
            return machine.recognize(symbols)
        if self.algorithm == "figure5":
            recognizer = ECRecognizer(self.dag, element, self.depth)
            return recognizer.accepts(symbols)
        # The content grammar and its recognizer live on the compiled
        # artifact, shared by every checker over this schema.
        earley = self.compiled.earley()
        return earley.recognizes(symbols, start=content_nonterminal(element))

    def check_node(self, node: XmlElement) -> bool:
        """Problem ECPV for a DOM node (children converted via ``Delta_T``)."""
        return self.check_content(node.name, content_symbols(node))

    # -- Problem PV ------------------------------------------------------------

    def check_document(self, document: XmlDocument | XmlElement) -> PVVerdict:
        """Problem PV: check every node of *document* (Section 4's reduction)."""
        root = document.root if isinstance(document, XmlDocument) else document
        failures: list[NodeFailure] = []
        if root.name != self.dtd.root:
            failures.append(
                NodeFailure(
                    path="/",
                    element=root.name,
                    symbols=(),
                    reason=(
                        f"document root is <{root.name}> but the DTD root is "
                        f"<{self.dtd.root}>"
                    ),
                )
            )
            return PVVerdict(False, tuple(failures), depth_limited=False)
        self._check_subtree(root, f"/{root.name}", failures)
        verdict_ok = not failures
        # A "no" can only be an artifact of the depth bound when a bound is
        # actually in force: the default machine is exact and unbounded;
        # the figure5 backend always carries one; the kernel and Earley
        # never do.
        bounded = (
            self.algorithm == "figure5"
            or (self.algorithm == "machine" and self.machine_depth is not None)
        )
        depth_limited = bool(failures) and self._is_strong and bounded
        if depth_limited and self.config.strict_depth:
            raise DepthBoundExceeded(self.depth)
        return PVVerdict(verdict_ok, tuple(failures), depth_limited=depth_limited)

    def check_text(self, text: str) -> PVVerdict:
        """Problem PV straight from document text.

        On the kernel backend with the fast parser active this is the
        fused single-pass hot path (:mod:`repro.core.stream`): no tree is
        materialized, tag names are interned to table ids as they are
        scanned, and the verdict — failures included — is identical to
        ``check_document(parse_xml(text))``, as is every well-formedness
        error.  Every other backend (and ``REPRO_PARSER=reference``)
        parses and delegates, byte-for-byte the classic pipeline.
        """
        if self.algorithm == "kernel" and parser_backend() == "fast":
            # Lazy import: stream sits above pv (it needs the kernel).
            from repro.core.stream import stream_check_document

            return stream_check_document(self.compiled, text)
        from repro.xmlmodel.parser import parse_xml

        return self.check_document(parse_xml(text))

    def is_potentially_valid(self, document: XmlDocument | XmlElement) -> bool:
        """Boolean convenience wrapper over :meth:`check_document`."""
        return self.check_document(document).potentially_valid

    def _check_subtree(
        self, node: XmlElement, path: str, failures: list[NodeFailure]
    ) -> None:
        if node.name not in self.dtd:
            failures.append(
                NodeFailure(
                    path=path,
                    element=node.name,
                    symbols=(),
                    reason=f"element type <{node.name}> is not declared in the DTD",
                )
            )
            return
        symbols = tuple(content_symbols(node))
        if not self.check_content(node.name, symbols):
            failures.append(
                NodeFailure(
                    path=path,
                    element=node.name,
                    symbols=symbols,
                    reason="content cannot be completed by tag insertions alone",
                )
            )
        for index, child in enumerate(node.element_children()):
            self._check_subtree(child, f"{path}/{child.name}[{index}]", failures)
