"""Coarse-to-fine admission: a tiny per-schema summary and a linear pass.

The exact backends decide Problem PV precisely, but most real traffic does
not need them: a corrupt document usually violates a *cheap necessary
condition* (an undeclared tag, an impossible parent/child pair, a child
count no completable content can reach), and a trivially valid document
often satisfies a *cheap sufficient condition* (every node's children
already spell a word of its content model).  :func:`compile_coarse`
derives both condition sets from the compiled DAG once per schema, and
:class:`CoarseChecker` applies them in one linear pass over a document,
returning one of three outcomes:

* ``"reject"`` — a necessary condition failed: **no** exact backend can
  accept this document, and the verdict names the same element the full
  check would fail on.
* ``"accept"`` — a sufficient condition held at every node: every exact
  backend accepts this document.
* ``"uncertain"`` — neither; the document must escalate to a full
  backend (the coarse-to-fine ladder's fine tier).

The summary is deliberately tiny — a name table plus per-element integer
bitmasks and a few small dicts, a few hundred bytes pickled — so it can
ride inside artifacts (format version 3), be fetched over the wire
(``get-coarse``), and be cached client-side per fingerprint.

Soundness notes
---------------
The parent→child pair filter uses the **embed-reachability** relation of
Definition 5 (``DTDAnalysis.embed_reach``), *not* direct syntactic
reference: tag insertions may wrap an existing child under a chain of
inserted elements, so a token is only impossible inside ``x`` when no
insertion chain from ``x`` embeds it.  The child-count intervals are
``[0, max]``: insertions can only *add* tokens, so a lower bound on the
original content is always 0, while the upper bound is the maximum number
of equal tokens any completable content of the element can embed (computed
by a fixpoint over the content models, with unbounded counts omitted).
A text run never *requires* insertions — an empty run satisfies any
``#PCDATA`` slot silently — so the gap hints only record where character
data is legal (directly, or only via wrapping).
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass

from repro.core.dag import DtdDag
from repro.dtd import ast
from repro.dtd.ast import Choice, ContentNode, Name, Opt, PCData, Plus, Seq, Star
from repro.dtd.model import DTD, PCDATA, AnyContent, MixedContent
from repro.xmlmodel.delta import SIGMA, content_symbols
from repro.xmlmodel.tree import XmlDocument, XmlElement

__all__ = [
    "COUNT_CAP",
    "CoarseSummary",
    "CoarseVerdict",
    "CoarseChecker",
    "compile_coarse",
    "encode_coarse",
    "decode_coarse",
]

#: Child-count upper bounds above this are treated as unbounded and not
#: stored: a bound that large never rejects real documents, and capping
#: keeps the count fixpoint small.  Raising the cap only *adds* reject
#: power; it never changes a verdict from reject to accept.
COUNT_CAP = 64

#: Internal sentinel for "unbounded" inside the count fixpoint.
_INF = COUNT_CAP + 1


@dataclass(frozen=True)
class CoarseVerdict:
    """One admission outcome: ``accept`` / ``reject`` / ``uncertain``.

    ``path``/``element`` pinpoint the node a ``reject`` is about (the same
    node the exact backends fail on) or, for ``uncertain``, the first node
    the linear pass could not decide; ``reason`` is human-readable.
    """

    outcome: str
    path: str = ""
    element: str = ""
    reason: str = ""

    @property
    def definite(self) -> bool:
        """True for ``accept``/``reject`` — no full backend needed."""
        return self.outcome != "uncertain"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        where = f" at {self.path} <{self.element}>" if self.path else ""
        return f"{self.outcome}{where}: {self.reason}" if self.reason else self.outcome


class CoarseSummary:
    """The per-schema admission summary (the coarse tier's whole input).

    Tokens are interned: bit ``i`` is ``names[i]`` for declared elements,
    and bit ``len(names)`` is the character-data token (``#PCDATA``).
    All per-element tables are indexed by the element's position in
    ``names``.

    Attributes
    ----------
    root:
        The DTD's designated root element.
    names:
        Declared element names, in declaration order (the bit order).
    allowed:
        Per element: bitmask of tokens some insertion chain can embed in
        its content (embed-reachability, Definition 5).  A child token
        outside this mask is a definite reject.
    accepts:
        Per element: bitmask of tokens over which *any* sequence is
        already a word of the content model (mixed/``ANY`` star sets).
        A child sequence inside this mask is a definite node accept.
    counts:
        Per element: ``{token bit: max}`` for tokens whose embeddable
        count is finite (≤ :data:`COUNT_CAP`).  Exceeding a max is a
        definite reject; absent tokens are unbounded.
    totals:
        Per element: the finite maximum *total* child-token count, or
        ``None`` when unbounded.
    empty_ok:
        Bitmask over elements whose empty content completes by silent
        insertions alone (childless node accept/reject pivot).
    gap_direct:
        Bitmask over elements where character data is *directly* legal
        (mixed/``ANY`` content).  The remaining gap-legal elements
        (``allowed`` has the ``#PCDATA`` bit, ``gap_direct`` does not)
        need the gap wrapped under inserted elements.
    """

    __slots__ = (
        "root",
        "names",
        "allowed",
        "accepts",
        "counts",
        "totals",
        "empty_ok",
        "gap_direct",
        "_index",
    )

    def __init__(
        self,
        root: str,
        names: tuple[str, ...],
        allowed: tuple[int, ...],
        accepts: tuple[int, ...],
        counts: tuple[dict[int, int], ...],
        totals: tuple[int | None, ...],
        empty_ok: int,
        gap_direct: int,
    ) -> None:
        self.root = root
        self.names = names
        self.allowed = allowed
        self.accepts = accepts
        self.counts = counts
        self.totals = totals
        self.empty_ok = empty_ok
        self.gap_direct = gap_direct
        self._index = {name: bit for bit, name in enumerate(names)}

    @property
    def pcdata_bit(self) -> int:
        return len(self.names)

    def element_bit(self, name: str) -> int | None:
        """The bit index of element *name*, or ``None`` if undeclared."""
        return self._index.get(name)

    def token_bit(self, token: str) -> int | None:
        """The bit index of a ``Delta_T`` token (element name or SIGMA)."""
        if token == SIGMA:
            return len(self.names)
        return self._index.get(token)

    # -- pickling (the index is derived; keep the payload minimal) ---------

    def __getstate__(self):
        return {
            "root": self.root,
            "names": self.names,
            "allowed": self.allowed,
            "accepts": self.accepts,
            "counts": self.counts,
            "totals": self.totals,
            "empty_ok": self.empty_ok,
            "gap_direct": self.gap_direct,
        }

    def __setstate__(self, state) -> None:
        self.__init__(**state)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CoarseSummary):
            return NotImplemented
        return self.__getstate__() == other.__getstate__()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CoarseSummary(root={self.root!r}, elements={len(self.names)}, "
            f"bytes~{len(encode_coarse(self))})"
        )


def encode_coarse(summary: CoarseSummary) -> bytes:
    """*summary* as transportable bytes (the ``get-coarse`` payload)."""
    return pickle.dumps(summary, protocol=pickle.HIGHEST_PROTOCOL)


def decode_coarse(blob: bytes) -> CoarseSummary | None:
    """Decode :func:`encode_coarse` bytes; ``None`` on any defect."""
    try:
        summary = pickle.loads(blob)
    except Exception:
        return None
    if not isinstance(summary, CoarseSummary):
        return None
    return summary


# -- compilation -----------------------------------------------------------


def _max_weight(node: ContentNode | None, weight: dict[str, int]) -> int:
    """Max total *weight* over any word of *node*'s language (capped).

    ``weight`` maps each symbol (element name or :data:`PCDATA`) to its
    per-occurrence contribution; star/plus over any positive weight is
    unbounded (:data:`_INF`).  Sums saturate at :data:`_INF`.
    """
    if node is None:
        return 0
    if isinstance(node, Name):
        return weight[node.name]
    if isinstance(node, PCData):
        return weight[PCDATA]
    if isinstance(node, Seq):
        total = 0
        for item in node.items:
            total += _max_weight(item, weight)
            if total >= _INF:
                return _INF
        return total
    if isinstance(node, Choice):
        return max(_max_weight(item, weight) for item in node.items)
    if isinstance(node, (Star, Plus)):
        return _INF if _max_weight(node.item, weight) > 0 else 0
    if isinstance(node, Opt):
        return _max_weight(node.item, weight)
    raise TypeError(f"unexpected content node {node!r}")


def _embed_capacity(dtd: DTD, target: str | None) -> dict[str, int]:
    """Per element: the most *target* tokens any completable content embeds.

    A position of a completed word either holds an original token
    (contributing 1 when it *is* the target) or an inserted element whose
    own content recursively embeds more wrapped originals.  ``target is
    None`` counts *all* tokens (the total-children bound).  The fixpoint
    is monotone over ``{0..CAP, INF}``, so it terminates; values above
    :data:`COUNT_CAP` saturate to :data:`_INF` (reported as unbounded,
    which is always sound — it only weakens the reject).
    """
    regexes = {name: dtd.content_regex(name) for name in dtd.element_names()}
    inserted: dict[str, int] = {name: 0 for name in regexes}

    def contribution(symbol: str) -> int:
        direct = 1 if (target is None or symbol == target) else 0
        wrapped = 0 if symbol == PCDATA else inserted[symbol]
        value = max(direct, wrapped)
        return _INF if value >= _INF else value

    changed = True
    while changed:
        changed = False
        weight = {name: contribution(name) for name in regexes}
        weight[PCDATA] = 1 if (target is None or target == PCDATA) else 0
        for name, regex in regexes.items():
            value = min(_max_weight(regex, weight), _INF)
            if value > inserted[name]:
                inserted[name] = value
                changed = True
    capacity: dict[str, int] = {}
    weight = {name: contribution(name) for name in regexes}
    weight[PCDATA] = 1 if (target is None or target == PCDATA) else 0
    for name, regex in regexes.items():
        capacity[name] = min(_max_weight(regex, weight), _INF)
    return capacity


def compile_coarse(dag: DtdDag) -> CoarseSummary:
    """Derive the admission summary from a compiled ``DAG_T``.

    Runs once per schema alongside the kernel tables; the result rides in
    format-version-3 artifacts and is what every admission surface —
    dispatcher stage, server short-circuit, client-side batch pre-filter —
    consumes at check time.
    """
    dtd = dag.dtd
    analysis = dag.analysis
    names = dtd.element_names()
    index = {name: bit for bit, name in enumerate(names)}
    pcdata_bit = len(names)

    allowed: list[int] = []
    accepts: list[int] = []
    empty_ok = 0
    gap_direct = 0
    for bit, name in enumerate(names):
        reach = analysis.embed_reach.get(name, frozenset())
        mask = 0
        for token in reach:
            mask |= 1 << (pcdata_bit if token == PCDATA else index[token])
        allowed.append(mask)
        content = dtd[name].content
        if isinstance(content, AnyContent):
            accepts.append((1 << (pcdata_bit + 1)) - 1)
        elif isinstance(content, MixedContent):
            star = 1 << pcdata_bit
            for token in content.names:
                star |= 1 << index[token]
            accepts.append(star)
        else:
            accepts.append(0)
        if dag.dag(name).exact_tables.entry_can_finish:
            empty_ok |= 1 << bit
        if dtd[name].allows_pcdata_directly():
            gap_direct |= 1 << bit

    # Parikh-style intervals: per element, the finite per-token maxima and
    # the finite total-token maximum (unbounded entries are omitted).
    per_token: dict[str, dict[str, int]] = {}
    for token in (*names, PCDATA):
        per_token[token] = _embed_capacity(dtd, token)
    total_capacity = _embed_capacity(dtd, None)

    counts: list[dict[int, int]] = []
    totals: list[int | None] = []
    for name in names:
        bounds: dict[int, int] = {}
        for token, capacities in per_token.items():
            value = capacities[name]
            if value < _INF:
                bit = pcdata_bit if token == PCDATA else index[token]
                bounds[bit] = value
        counts.append(bounds)
        total = total_capacity[name]
        totals.append(None if total >= _INF else total)

    return CoarseSummary(
        root=dtd.root,
        names=names,
        allowed=tuple(allowed),
        accepts=tuple(accepts),
        counts=tuple(counts),
        totals=tuple(totals),
        empty_ok=empty_ok,
        gap_direct=gap_direct,
    )


# -- the linear pass -------------------------------------------------------


class CoarseChecker:
    """Applies a :class:`CoarseSummary` to documents in one linear pass.

    The pass visits each element once, converts its children through
    ``Delta_T`` exactly like the full checkers, and stops at the first
    definite reject.  Paths use the same format as
    :class:`~repro.core.pv.PVChecker` failures, so a reject names the
    node the full check fails on.
    """

    def __init__(self, summary: CoarseSummary) -> None:
        self.summary = summary

    def check_document(self, document: XmlDocument | XmlElement) -> CoarseVerdict:
        root = document.root if isinstance(document, XmlDocument) else document
        summary = self.summary
        if root.name != summary.root:
            return CoarseVerdict(
                "reject",
                path="/",
                element=root.name,
                reason=(
                    f"document root is <{root.name}> but the DTD root is "
                    f"<{summary.root}>"
                ),
            )
        pcdata_bit = summary.pcdata_bit
        first_uncertain: CoarseVerdict | None = None
        stack: list[tuple[XmlElement, str]] = [(root, f"/{root.name}")]
        while stack:
            node, path = stack.pop()
            bit = summary.element_bit(node.name)
            if bit is None:
                return CoarseVerdict(
                    "reject",
                    path=path,
                    element=node.name,
                    reason=(
                        f"element type <{node.name}> is not declared in the DTD"
                    ),
                )
            verdict = self._check_content(node, path, bit)
            if verdict is not None:
                if verdict.outcome == "reject":
                    return verdict
                if first_uncertain is None:
                    first_uncertain = verdict
            for idx, child in enumerate(node.element_children()):
                stack.append((child, f"{path}/{child.name}[{idx}]"))
        if first_uncertain is not None:
            return first_uncertain
        return CoarseVerdict(
            "accept", reason="every node's children already spell a word"
        )

    def check_text(self, source: str) -> CoarseVerdict:
        """The admission pass straight from document text.

        With the fast parser active this consumes the event stream
        directly (:func:`repro.core.stream.stream_coarse_check`) —
        outcome-identical to parsing first, though a reject may name a
        different node (the tree pass visits children in reverse
        document order).  ``REPRO_PARSER=reference`` parses and
        delegates.
        """
        from repro.xmlmodel.fastlex import parser_backend

        if parser_backend() == "fast":
            # Lazy import: stream imports this module for the verdict types.
            from repro.core.stream import stream_coarse_check

            return stream_coarse_check(self.summary, source)
        from repro.xmlmodel.parser import parse_xml

        return self.check_document(parse_xml(source))

    def _check_content(
        self, node: XmlElement, path: str, bit: int
    ) -> CoarseVerdict | None:
        """``None`` for node accept, else the reject/uncertain verdict."""
        summary = self.summary
        symbols = content_symbols(node)
        if not symbols:
            if (summary.empty_ok >> bit) & 1:
                return None
            return CoarseVerdict(
                "reject",
                path=path,
                element=node.name,
                reason=(
                    f"the empty content of <{node.name}> cannot be completed "
                    "by tag insertions alone"
                ),
            )
        allowed = summary.allowed[bit]
        accepts = summary.accepts[bit]
        bounds = summary.counts[bit]
        pcdata_bit = summary.pcdata_bit
        seen: dict[int, int] = {}
        node_accept = True
        for symbol in symbols:
            token_bit = pcdata_bit if symbol == SIGMA else summary.element_bit(symbol)
            if token_bit is None or not (allowed >> token_bit) & 1:
                if symbol == SIGMA:
                    reason = (
                        f"character data can never occur inside <{node.name}> "
                        "(no insertion chain embeds it)"
                    )
                elif token_bit is None:
                    reason = (
                        f"child <{symbol}> is not declared in the DTD, so the "
                        f"content of <{node.name}> can never complete"
                    )
                else:
                    reason = (
                        f"<{symbol}> can never occur inside <{node.name}> "
                        "(no insertion chain embeds it)"
                    )
                return CoarseVerdict(
                    "reject", path=path, element=node.name, reason=reason
                )
            tally = seen.get(token_bit, 0) + 1
            seen[token_bit] = tally
            limit = bounds.get(token_bit)
            if limit is not None and tally > limit:
                what = (
                    "character-data runs"
                    if token_bit == pcdata_bit
                    else f"<{symbol}> children"
                )
                return CoarseVerdict(
                    "reject",
                    path=path,
                    element=node.name,
                    reason=(
                        f"{tally} {what} exceed the most any completable "
                        f"content of <{node.name}> embeds ({limit})"
                    ),
                )
            if not (accepts >> token_bit) & 1:
                node_accept = False
        total = summary.totals[bit]
        if total is not None and len(symbols) > total:
            return CoarseVerdict(
                "reject",
                path=path,
                element=node.name,
                reason=(
                    f"{len(symbols)} children exceed the most any completable "
                    f"content of <{node.name}> embeds ({total})"
                ),
            )
        if node_accept:
            return None
        return CoarseVerdict(
            "uncertain",
            path=path,
            element=node.name,
            reason="children may need insertions; escalating to a full backend",
        )
