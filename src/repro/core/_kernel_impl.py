"""Pure-python implementation of the table-driven verdict kernel.

This module is the compilation unit behind the
``repro.core._kernel_native`` seam: ``tools/build_native_kernel.py``
compiles a verbatim copy of this file with Cython and drops the
extension next to it; :mod:`repro.core.kernel` imports whichever is
available.  Keep it self-contained (only :mod:`repro.config` and
:mod:`repro.errors` imports) and free of typing-only constructs the
compilers reject.

:class:`KernelMachine` decides Problem ECPV with *exactly* the merged
GSS semantics of :class:`repro.core.machine.PVMachine` — the
differential suite pins ``kernel ≡ machine ≡ earley`` — but over the
dense tables of :mod:`repro.core.tables`:

* a GSS node is an index into parallel lists (``element id``,
  ``position``, ``parent ids``, ``finishable bit``) instead of an
  object; node ``0`` is the shared stack-bottom sentinel;
* a token round intersects one precomputed closure bitmask with one
  match mask and one embed mask per explored frame key — no set
  iteration, no string comparison, no per-checker closure cache;
* round targets (consumption and continuation nodes) are interned in
  round-local parallel lists; hypothesized *entry* frames are never
  materialized at all — their shared continuation sets are resolved
  straight into the targets' parent lists when the round freezes
  (a machine entry node never becomes anyone's parent, so nothing
  observable is lost);
* acceptance replaces the machine's path-enumerating DFS with a
  linear reverse-reachability pass: a node is *good* when it is
  finishable and the bottom sentinel is reachable root-ward through
  finishable nodes; accept iff some surviving leaf is good.

Bit-twiddling idiom used throughout (lowest set bit extraction)::

    low = mask & -mask
    index = low.bit_length() - 1
    mask ^= low

Python ints are arbitrary-width, so automata with more than 63
positions need no widening logic (pinned by the bitmask-width tests).
"""

from repro.config import MACHINE_NODE_LIMIT
from repro.errors import PVError

__all__ = ["KernelMachine", "IMPLEMENTATION"]

#: Which build this is; the native copy is patched to say "native".
IMPLEMENTATION = "pure"

#: Pseudo-position "nothing consumed yet" (mirrors ``repro.core.dag.ENTRY``).
_ENTRY = -1

#: Node id of the shared stack-bottom sentinel.
_BOTTOM = 0


def _compute_emissions(tables, position, sym):
    """One key's round emissions: (match indices, (index, child) descends).

    Document-independent — a pure function of the element tables, the
    position, and the symbol — so results live in the shared
    ``CompiledTables.emissions`` memo and the bit loops run once per
    distinct ``(element, position, symbol)`` triple per process.
    """
    closure = tables.closures[position + 1]
    if not closure:
        return ((), ())
    match_list = []
    mask = closure & tables.match_masks.get(sym, 0)
    while mask:
        low = mask & -mask
        mask ^= low
        match_list.append(low.bit_length() - 1)
    cont_list = []
    mask = closure & tables.embed_masks.get(sym, 0)
    pos_elem = tables.pos_elem
    while mask:
        low = mask & -mask
        mask ^= low
        index = low.bit_length() - 1
        cont_list.append((index, pos_elem[index]))
    return (tuple(match_list), tuple(cont_list))


class KernelMachine:
    """Exact ECPV recognizer over :class:`repro.core.tables.CompiledTables`.

    One instance checks one element's content sequence; construction is a
    handful of list appends, so per-node instantiation inside a document
    walk is cheap.  Feed interned symbol ids through :meth:`step` (or
    strings through :meth:`recognize`); ``-1`` is the "undeclared symbol"
    id and matches nothing anywhere.
    """

    __slots__ = (
        "tables",
        "element",
        "leaves",
        "rejected_at",
        "_elements",
        "_root_elem",
        "_root_tables",
        "_elem",
        "_pos",
        "_key",
        "_parents",
        "_fin",
        "_allocated",
        "_consumed",
        "_flat",
        "_flat_entry",
        "_flat_mask",
    )

    def __init__(self, tables, element):
        self.tables = tables
        self.element = element
        element_id = tables.sid[element]
        self._elements = tables.elements
        self._root_elem = element_id
        self._root_tables = tables.elements[element_id]
        # Parallel node store; node 0 is the bottom sentinel, node 1 the
        # root frame "checking <element>, nothing consumed yet".  Built
        # lazily on the first flat-regime exit — most content checks never
        # hypothesize an insertion and stay pure bitmask.
        self._elem = None
        self._pos = None
        # Per node: the packed exploration key (element << 21 | pos + 1).
        self._key = None
        self._parents = None
        self._fin = None
        self._allocated = 2
        self.leaves = [1]
        self.rejected_at = None
        self._consumed = 0
        # Flat regime: until the first insertion hypothesis fires, every
        # surviving node sits directly on the bottom sentinel in the root
        # element's automaton, so the whole GSS collapses to one bitmask
        # of positions and a round is pure bitwise arithmetic.
        self._flat = True
        self._flat_entry = True
        self._flat_mask = 0

    # -- stepping -------------------------------------------------------------

    def step(self, sym):
        """Feed one interned symbol id; False when no hypothesis survives."""
        if self.rejected_at is not None:
            return False
        if self._flat:
            # One shared-memo lookup decides the whole flat round: the
            # transition is a pure function of (element, state, symbol),
            # where state -1 is the virtual ENTRY state.  -1 as the cached
            # value means "an insertion hypothesis fires here".
            state = -1 if self._flat_entry else self._flat_mask
            fkey = (self._root_elem, state, sym)
            emissions = self.tables.emissions
            survivors = emissions.get(fkey)
            if survivors is None:
                tables = self._root_tables
                closures = tables.closures
                if state == -1:
                    closure = closures[0]
                else:
                    closure = 0
                    mask = state
                    while mask:
                        low = mask & -mask
                        mask ^= low
                        # bit i's closure lives in closures[i + 1]
                        closure |= closures[low.bit_length()]
                if closure and closure & tables.embed_masks.get(sym, 0):
                    survivors = -1
                else:
                    survivors = closure & tables.match_masks.get(sym, 0)
                emissions[fkey] = survivors
            if survivors != -1:
                self._consumed += 1
                self._flat_entry = False
                self._flat_mask = survivors
                if not survivors:
                    self.rejected_at = self._consumed - 1
                    return False
                return True
            # An insertion hypothesis fires: materialize the flat state as
            # GSS nodes and run the general round.
            self._exit_flat()
        leaves = self.leaves
        elements = self._elements
        fin = self._fin
        parents = self._parents

        # Fast path: a single surviving frame whose round-exploration set
        # is provably just itself (not finishable, or parented only by the
        # bottom sentinel) and whose closure hypothesizes no insertions
        # for this symbol.  The round is then pure consumption: each match
        # bit becomes a leaf that *aliases* the frame's (frozen) parent
        # list, skipping all round-interning machinery.  This is the
        # common shape for flat, directly-matching content.
        if len(leaves) == 1:
            frame = leaves[0]
            frame_parents = parents[frame]
            if not fin[frame] or (
                len(frame_parents) == 1 and frame_parents[0] == _BOTTOM
            ):
                element_id = self._elem[frame]
                tables = elements[element_id]
                closure = tables.closures[self._pos[frame] + 1]
                if closure & tables.embed_masks.get(sym, 0) == 0:
                    mask = closure & tables.match_masks.get(sym, 0)
                    elem = self._elem
                    pos = self._pos
                    key = self._key
                    ebase = (element_id << 21) + 1
                    fin_mask = tables.fin_mask
                    node = self._allocated
                    new_leaves = []
                    while mask:
                        low = mask & -mask
                        mask ^= low
                        index = low.bit_length() - 1
                        elem.append(element_id)
                        pos.append(index)
                        key.append(ebase + index)
                        parents.append(frame_parents)
                        fin.append((fin_mask >> index) & 1)
                        new_leaves.append(node)
                        node += 1
                    self._allocated = node
                    if node > MACHINE_NODE_LIMIT:
                        raise PVError(
                            "KernelMachine exceeded its node allocation limit"
                        )
                    return self._finish_round(new_leaves)
        return self._full_step(sym)

    def _exit_flat(self):
        """Materialize the flat bitmask state as bottom-parented nodes."""
        self._flat = False
        element_id = self._root_elem
        if self._elem is None:
            self._elem = [-1, element_id]
            self._pos = [_ENTRY, _ENTRY]
            self._key = [0, element_id << 21]
            self._parents = [[], [_BOTTOM]]
            self._fin = [True, self._root_tables.entry_fin]
        if self._flat_entry:
            self.leaves = [1]
            return
        tables = self._root_tables
        elem = self._elem
        pos = self._pos
        key = self._key
        parents = self._parents
        fin = self._fin
        bottom_parents = parents[1]
        ebase = (element_id << 21) + 1
        fin_mask = tables.fin_mask
        node = self._allocated
        leaves = []
        mask = self._flat_mask
        while mask:
            low = mask & -mask
            mask ^= low
            index = low.bit_length() - 1
            elem.append(element_id)
            pos.append(index)
            key.append(ebase + index)
            parents.append(bottom_parents)
            fin.append((fin_mask >> index) & 1)
            leaves.append(node)
            node += 1
        self._allocated = node
        self.leaves = leaves

    def _full_step(self, sym):
        """The general round: key-replayed GSS exploration over bitmasks.

        Parent bookkeeping is done per exploration *key*, not per frame:
        every frame sharing a key contributes the same way to every target
        that key emits, so each target records the key records that
        emitted it, and a key's frame set is resolved into one shared
        parent list exactly once when the round freezes.  This is
        observably identical to the machine's symmetric frame-by-frame
        source registration (the invariant both maintain: a target's
        parents are the union of its emitting keys' frames' parents).
        """
        elements = self._elements
        elem = self._elem
        pos = self._pos
        parents = self._parents
        fin = self._fin
        emissions = self.tables.emissions

        # Round targets: interned (kind, element, position) nodes-to-be.
        # kind 0 = consumption ("leaf"), kind 1 = continuation.  A target
        # is fully described by its packed key — ((element << 21 |
        # position+1) << 1) | kind — plus the key records that emitted it.
        target_key = []
        target_records = []
        target_index = {}
        # Entry frames: one per hypothesized missing element this round.
        # Never materialized — only their continuation sets survive, as
        # negative frame refs encoded -(entry_index + 1).  Newly created
        # entries join the exploration stack like any other frame
        # (ordering is free to differ from the machine's eager recursion:
        # the round's fixed point is the same either way).
        entry_conts = []
        entry_index = {}
        entry_packed = []
        # Per exploration key: [frames, resolved-parents-or-None], or
        # False for a key that emits nothing this round (its frames need
        # no recording).  The positional exploration runs once per key;
        # later frames with the same key only widen the stack contexts.
        key_replay = {}

        # One worklist drives the whole exploration: surviving leaves, then
        # root-ward finishable ancestors (moving to a parent abandons a
        # frame: its remaining content must be silently completable), plus
        # hypothesized entry frames pushed as negative refs.  Replays — a
        # frame whose (element, position) key was already explored — are
        # the common case and only widen the key's frame set; a fresh key
        # interns its cached emission lists inline.
        sym1 = sym + 1
        explored = bytearray(self._allocated)
        key = self._key
        key_get = key_replay.get
        emissions_get = emissions.get
        ti_get = target_index.get
        ei_get = entry_index.get
        stack = list(self.leaves)
        pop = stack.pop
        push = stack.append
        while stack:
            frame = pop()
            if frame >= 0:
                if explored[frame]:
                    continue
                explored[frame] = 1
                packed = key[frame]
                if fin[frame]:
                    for parent in parents[frame]:
                        if parent != _BOTTOM:
                            push(parent)
            else:
                packed = entry_packed[-1 - frame]
            record = key_get(packed)
            if record:
                record[0].append(frame)
                continue
            if record is False:
                # Key already known to emit nothing for this symbol.
                continue
            ekey = (packed << 22) | sym1
            cached = emissions_get(ekey)
            element_id = packed >> 21
            if cached is None:
                cached = _compute_emissions(
                    elements[element_id], (packed & 0x1FFFFF) - 1, sym
                )
                emissions[ekey] = cached
            match_list, cont_list = cached
            if not match_list and not cont_list:
                # A dead key: no frame context ever needs recording.
                key_replay[packed] = False
                continue
            record = [[frame], None]
            key_replay[packed] = record
            ebase = (element_id << 21) + 1
            for index in match_list:
                tkey = (ebase + index) << 1
                tidx = ti_get(tkey)
                if tidx is None:
                    target_index[tkey] = len(target_key)
                    target_key.append(tkey)
                    target_records.append([record])
                else:
                    target_records[tidx].append(record)
            for index, child in cont_list:
                tkey = ((ebase + index) << 1) | 1
                tidx = ti_get(tkey)
                if tidx is None:
                    tidx = len(target_key)
                    target_index[tkey] = tidx
                    target_key.append(tkey)
                    target_records.append([record])
                else:
                    target_records[tidx].append(record)
                eidx = ei_get(child)
                if eidx is None:
                    entry_index[child] = len(entry_conts)
                    push(-1 - len(entry_conts))
                    entry_conts.append([tidx])
                    entry_packed.append(child << 21)
                else:
                    conts = entry_conts[eidx]
                    if tidx not in conts:
                        conts.append(tidx)

        # Freeze: materialize targets as global nodes.  Entry refs resolve
        # to their continuation targets' global ids — base + tidx is known
        # before those nodes exist.
        base = self._allocated
        count = len(target_key)
        self._allocated = base + count
        if self._allocated > MACHINE_NODE_LIMIT:
            raise PVError("KernelMachine exceeded its node allocation limit")

        def resolve(record):
            frames = record[0]
            if len(frames) == 1:
                ref = frames[0]
                if ref >= 0:
                    resolved = parents[ref]
                else:
                    resolved = [base + cont for cont in entry_conts[-ref - 1]]
            else:
                resolved = []
                seen = set()
                for ref in frames:
                    if ref >= 0:
                        for parent in parents[ref]:
                            if parent not in seen:
                                seen.add(parent)
                                resolved.append(parent)
                    else:
                        for cont in entry_conts[-ref - 1]:
                            parent = base + cont
                            if parent not in seen:
                                seen.add(parent)
                                resolved.append(parent)
            record[1] = resolved
            return resolved

        new_leaves = []
        root_elem = self._root_elem
        refold = True
        refold_mask = 0
        last_elem = -1
        fin_mask = 0
        for tidx in range(count):
            tkey = target_key[tidx]
            packed = tkey >> 1
            element_id = packed >> 21
            if element_id != last_elem:
                last_elem = element_id
                fin_mask = elements[element_id].fin_mask
            index = (packed & 0x1FFFFF) - 1
            records = target_records[tidx]
            if len(records) == 1:
                record = records[0]
                parent_list = record[1]
                if parent_list is None:
                    frames = record[0]
                    if len(frames) == 1:
                        ref = frames[0]
                        if ref >= 0:
                            parent_list = parents[ref]
                        else:
                            parent_list = [
                                base + cont for cont in entry_conts[-1 - ref]
                            ]
                        record[1] = parent_list
                    else:
                        parent_list = resolve(record)
            else:
                parent_list = []
                parent_seen = set()
                for record in records:
                    resolved = record[1]
                    if resolved is None:
                        resolved = resolve(record)
                    for parent in resolved:
                        if parent not in parent_seen:
                            parent_seen.add(parent)
                            parent_list.append(parent)
            elem.append(element_id)
            pos.append(index)
            key.append(packed)
            parents.append(parent_list)
            fin.append((fin_mask >> index) & 1)
            if not tkey & 1:
                new_leaves.append(base + tidx)
                if refold:
                    if (
                        element_id == root_elem
                        and len(parent_list) == 1
                        and parent_list[0] == _BOTTOM
                    ):
                        refold_mask |= 1 << index
                    else:
                        refold = False
        # When every survivor is a bottom-parented root-element node, the
        # GSS has collapsed back to the flat regime: drop to the bitmask
        # representation (the rest of the graph is unreachable garbage).
        if refold and new_leaves:
            self._flat = True
            self._flat_entry = False
            self._flat_mask = refold_mask
        return self._finish_round(new_leaves)

    def _finish_round(self, new_leaves):
        self._consumed += 1
        self.leaves = new_leaves
        if not new_leaves:
            self.rejected_at = self._consumed - 1
            return False
        return True

    # -- acceptance -----------------------------------------------------------

    def accepts_now(self):
        """Would stopping here be accepted? (A root-ward finishable path.)

        Equivalent to the machine's path DFS: a leaf is accepted iff the
        bottom sentinel is reachable through finishable nodes, and any
        root-ward path is witnessed by a simple one — so plain reverse
        reachability (linear in GSS size) decides it without the DFS's
        pathological path enumeration.
        """
        if self.rejected_at is not None:
            return False
        if self._flat:
            if self._flat_entry:
                return self._root_tables.entry_fin
            return bool(self._flat_mask & self._root_tables.fin_mask)
        parents = self._parents
        fin = self._fin
        for leaf in self.leaves:
            if fin[leaf] and _BOTTOM in parents[leaf]:
                return True
        # Slow path: propagate "good" (reaches bottom via finishable
        # nodes) down the reversed parent edges, restricted to finishable
        # nodes — only they can extend a closing path.
        count = self._allocated
        children = [[] for _ in range(count)]
        good = bytearray(count)
        stack = []
        for node in range(1, count):
            if not fin[node]:
                continue
            for parent in parents[node]:
                if parent == _BOTTOM:
                    if not good[node]:
                        good[node] = 1
                        stack.append(node)
                else:
                    children[parent].append(node)
        while stack:
            parent = stack.pop()
            for child in children[parent]:
                if not good[child]:
                    good[child] = 1
                    stack.append(child)
        return any(good[leaf] for leaf in self.leaves)

    # -- string-level conveniences --------------------------------------------

    def recognize(self, symbols):
        """Decide ECPV for a ``Delta_T`` token sequence (strings)."""
        sid = self.tables.sid.get
        step = self.step
        for symbol in symbols:
            if not step(sid(symbol, -1)):
                return False
        return self.accepts_now()

    def accepts(self, symbols):
        """Alias of :meth:`recognize` mirroring the machine's API."""
        return self.recognize(symbols)

    @property
    def allocated_nodes(self):
        """Total GSS nodes materialized (benchmark instrumentation)."""
        return self._allocated
