"""Constructive completion: turn a potentially valid document into a valid one.

Definition 1 promises that a potentially valid document "can be made valid
by inserting more markup tags"; this module *computes* such an extension —
the reproduction of the paper's Figure 3, where the Example 1 string ``w``
gains two ``<d>`` elements and becomes valid.

Method
------
Per node, the children token sequence (``Delta_T``) is parsed against the
per-element content grammar of :func:`repro.grammar.build.build_content_cfg`
— the same grammar the exact ECPV reference uses.  A derivation of
``CONTENT:x`` assigns every token to either

* a *direct* slot (``C:y -> y``): the existing child stays at this level, or
* an *inserted* element (``C:y -> CONTENT:y``): a new ``<y>`` wraps the
  sub-derivation's tokens — possibly none, in which case the recursion
  bottoms out in a synthesized minimal witness.

Because ``CONTENT:x`` carries the **original** content model (with its
``?``/``+`` intact), any derivation reconstructs a *fully valid* content,
not merely a potentially valid one.  Recursion over actual element children
completes the whole document.

The parser is a memoized top-down interval parser with cycle-safe caching
(derivability is a least fixpoint, so "true" results are always cacheable
while "false" results are cached only when no in-progress cycle was
touched).  节点-level spans are small in practice, and completions are an
editor-scale operation, so the cubic worst case is acceptable; the fast
recognizers remain the per-keystroke path.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from functools import lru_cache
from typing import Sequence

# Interval parsing and reconstruction recurse proportionally to the token
# span (star chains unroll one level per token); lift CPython's default
# limit so editor-scale nodes complete comfortably.
sys.setrecursionlimit(max(sys.getrecursionlimit(), 20_000))

from repro.dtd.model import DTD
from repro.errors import ReproError
from repro.grammar.build import build_content_cfg, content_nonterminal
from repro.grammar.cfg import Grammar, Production
from repro.xmlmodel.delta import SIGMA
from repro.xmlmodel.tree import XmlDocument, XmlElement, XmlNode, XmlText

__all__ = ["CompletionError", "CompletionResult", "complete_document", "complete_element"]


class CompletionError(ReproError):
    """The document is not potentially valid, so no completion exists."""

    def __init__(self, path: str, element: str) -> None:
        self.path = path
        self.element = element
        super().__init__(
            f"no completion exists for <{element}> at {path}: "
            "the content cannot be completed by tag insertions alone"
        )


@dataclass(frozen=True)
class CompletionResult:
    """A completed (valid) document plus how many elements were inserted."""

    document: XmlDocument
    inserted: int


# ---------------------------------------------------------------------------
# Interval parser over the content grammar
# ---------------------------------------------------------------------------


class _IntervalParser:
    """Decides (and reconstructs) ``symbol =>* tokens[i:j]`` derivations.

    Derivability is computed bottom-up into a chart (CYK-style over the
    un-binarized grammar): spans in increasing width, with a fixpoint loop
    per span so unit/epsilon cycles — which the content grammars are full
    of — converge to their least fixpoint in polynomial time.
    """

    def __init__(self, grammar: Grammar) -> None:
        self.grammar = grammar
        self._tokens: tuple[str, ...] = ()
        self._chart: list[list[set[str]]] = []

    def set_tokens(self, tokens: Sequence[str]) -> None:
        self._tokens = tuple(tokens)
        self._build_chart()

    # -- recognition ---------------------------------------------------------

    def derives(self, symbol: str, i: int, j: int) -> bool:
        """Whether *symbol* derives ``tokens[i:j]`` (chart lookup)."""
        if not self.grammar.is_nonterminal(symbol):
            return j == i + 1 and self._tokens[i] == symbol
        return symbol in self._chart[i][j - i]

    def _build_chart(self) -> None:
        grammar = self.grammar
        n = len(self._tokens)
        # _chart[i][width] = set of nonterminals deriving tokens[i:i+width].
        self._chart = [
            [set() for _width in range(n - i + 1)] for i in range(n + 1)
        ]
        for i in range(n + 1):
            self._chart[i][0] = set(grammar.nullable)
        for width in range(1, n + 1):
            for i in range(n - width + 1):
                cell = self._chart[i][width]
                changed = True
                while changed:
                    changed = False
                    for production in grammar.productions:
                        head = production.head
                        if head in cell:
                            continue
                        if self._body_derives(production.body, 0, i, i + width):
                            cell.add(head)
                            changed = True

    def _body_derives(
        self, body: tuple[str, ...], index: int, i: int, j: int
    ) -> bool:
        """Whether ``body[index:]`` derives ``tokens[i:j]`` given the chart
        up to (and including the in-progress fixpoint of) width ``j - i``."""
        if index == len(body):
            return i == j
        symbol = body[index]
        if not self.grammar.is_nonterminal(symbol):
            return (
                i < j
                and self._tokens[i] == symbol
                and self._body_derives(body, index + 1, i + 1, j)
            )
        for split in range(i, j + 1):
            if symbol not in self._chart[i][split - i]:
                continue
            if self._body_derives(body, index + 1, split, j):
                return True
        return False

    # -- reconstruction ----------------------------------------------------------

    def derivation(self, symbol: str, i: int, j: int) -> "_Node":
        """Reconstruct one derivation tree (caller guarantees derivability).

        The DFS is guarded by the set of in-progress ``(symbol, i, j)``
        items: a minimal-height derivation never repeats an item along a
        root-to-leaf path (the repeat could be shortcut), so restricting
        the search to repeat-free paths preserves completeness while
        guaranteeing termination on cyclic unit/epsilon chains.
        """
        tree = self._reconstruct(symbol, i, j, set())
        if tree is None:  # pragma: no cover - caller checks derives() first
            raise AssertionError(f"no derivation for {symbol} over [{i},{j})")
        return tree

    def _reconstruct(
        self, symbol: str, i: int, j: int, path: set[tuple[str, int, int]]
    ) -> "_Node | None":
        grammar = self.grammar
        if not grammar.is_nonterminal(symbol):
            if j == i + 1 and self._tokens[i] == symbol:
                return _Node(symbol, i, j, None, ())
            return None
        if not self.derives(symbol, i, j):
            return None
        key = (symbol, i, j)
        if key in path:
            return None
        path.add(key)
        try:
            for production in grammar.alternatives(symbol):
                children = self._reconstruct_body(production.body, 0, i, j, path)
                if children is not None:
                    return _Node(symbol, i, j, production, tuple(children))
            return None
        finally:
            path.discard(key)

    def _reconstruct_body(
        self,
        body: tuple[str, ...],
        index: int,
        i: int,
        j: int,
        path: set[tuple[str, int, int]],
    ) -> "list[_Node] | None":
        if index == len(body):
            return [] if i == j else None
        symbol = body[index]
        if not self.grammar.is_nonterminal(symbol):
            if i < j and self._tokens[i] == symbol:
                rest = self._reconstruct_body(body, index + 1, i + 1, j, path)
                if rest is not None:
                    return [_Node(symbol, i, i + 1, None, ()), *rest]
            return None
        # Longest-first split order: prefer consuming real tokens in the
        # current slot over synthesizing empty insertions before them.
        # This is what makes the Example 1 completion come out as the
        # paper's Figure 3 (two <d> insertions) rather than a larger one.
        for split in range(j, i - 1, -1):
            if not self.derives(symbol, i, split):
                continue
            child = self._reconstruct(symbol, i, split, path)
            if child is None:
                continue
            rest = self._reconstruct_body(body, index + 1, split, j, path)
            if rest is not None:
                return [child, *rest]
        return None


@dataclass(frozen=True)
class _Node:
    """A derivation-tree node over the content grammar."""

    symbol: str
    start: int
    end: int
    production: Production | None
    children: tuple["_Node", ...]


@lru_cache(maxsize=64)
def _parser_for(dtd: DTD) -> _IntervalParser:
    return _IntervalParser(build_content_cfg(dtd))


# ---------------------------------------------------------------------------
# Document assembly
# ---------------------------------------------------------------------------


def _token_items(element: XmlElement) -> tuple[list[str], list[list[XmlNode]]]:
    """``Delta_T`` tokens plus, per token, the original child nodes it covers."""
    tokens: list[str] = []
    items: list[list[XmlNode]] = []
    for child in element.children:
        if isinstance(child, XmlText):
            if not child.text:
                continue
            if tokens and tokens[-1] == SIGMA and isinstance(
                items[-1][-1], XmlText
            ):
                items[-1].append(child)
                continue
            tokens.append(SIGMA)
            items.append([child])
        else:
            tokens.append(child.name)
            items.append([child])
    return tokens, items


class _Completer:
    def __init__(self, dtd: DTD) -> None:
        self.dtd = dtd
        self.parser = _parser_for(dtd)
        self.inserted = 0

    def complete(self, element: XmlElement, path: str) -> XmlElement:
        if element.name not in self.dtd:
            raise CompletionError(path, element.name)
        tokens, items = _token_items(element)
        start = content_nonterminal(element.name)
        self.parser.set_tokens(tokens)
        if not self.parser.derives(start, 0, len(tokens)):
            raise CompletionError(path, element.name)
        derivation = self.parser.derivation(start, 0, len(tokens))
        # Materialize before recursing: recursion re-targets the shared parser.
        plan = _extract_plan(derivation)
        output = XmlElement(element.name, attributes=dict(element.attributes))
        self._apply_plan(plan, items, output, path)
        return output

    def _apply_plan(
        self,
        plan: list["_PlanItem"],
        items: list[list[XmlNode]],
        target: XmlElement,
        path: str,
    ) -> None:
        for entry in plan:
            if isinstance(entry, _Direct):
                for node in items[entry.token_index]:
                    if isinstance(node, XmlText):
                        target.append(XmlText(node.text))
                    else:
                        child_path = f"{path}/{node.name}"
                        target.append(self.complete(node, child_path))
            else:
                self.inserted += 1
                wrapper = XmlElement(entry.element)
                target.append(wrapper)
                self._apply_plan(entry.children, items, wrapper, path)


@dataclass(frozen=True)
class _Direct:
    """A token kept at the current level (existing child / text run)."""

    token_index: int


@dataclass(frozen=True)
class _Inserted:
    """A synthesized element wrapping a sub-plan (possibly empty)."""

    element: str
    children: list["_PlanItem"]


_PlanItem = _Direct | _Inserted


def _extract_plan(node: _Node) -> list[_PlanItem]:
    """Flatten a ``CONTENT:x`` derivation into direct/inserted items."""
    plan: list[_PlanItem] = []
    _collect(node, plan)
    return plan


def _collect(node: _Node, plan: list[_PlanItem]) -> None:
    production = node.production
    if production is None:
        # Terminal leaf: one consumed token.
        plan.append(_Direct(node.start))
        return
    head = production.head
    if head.startswith("CONTENT:"):
        for child in node.children:
            _collect(child, plan)
        return
    if head.startswith("C:"):
        if (
            len(node.children) == 1
            and node.children[0].production is not None
            and node.children[0].production.head.startswith("CONTENT:")
        ):
            # C:y -> CONTENT:y — an inserted <y> wrapping the sub-plan.
            element = head[len("C:") :]
            if element == SIGMA:
                # C:#PCDATA -> ε: nothing to emit (optional text omitted).
                return
            inner: list[_PlanItem] = []
            _collect(node.children[0], inner)
            plan.append(_Inserted(element, inner))
            return
        if not node.children:
            # C:#PCDATA -> ε
            return
        # C:y -> y — the direct token.
        _collect(node.children[0], plan)
        return
    # Auxiliary regex nonterminals (%alt/%star/%opt/%plus): structural.
    for child in node.children:
        _collect(child, plan)


def complete_element(dtd: DTD, element: XmlElement) -> tuple[XmlElement, int]:
    """Complete the subtree rooted at *element*; returns (new tree, insertions)."""
    completer = _Completer(dtd)
    completed = completer.complete(element, f"/{element.name}")
    return completed, completer.inserted


def complete_document(dtd: DTD, document: XmlDocument) -> CompletionResult:
    """Compute a valid extension of *document* (Definition 2's ``Ext``).

    Raises :class:`CompletionError` when (and only when) the document is not
    potentially valid.  The returned document preserves all original nodes,
    their order and their character data; only new element wrappers are
    added — exactly the paper's notion of extension.
    """
    if document.root.name != dtd.root:
        raise CompletionError("/", document.root.name)
    completed, inserted = complete_element(dtd, document.root)
    return CompletionResult(XmlDocument(completed), inserted)
