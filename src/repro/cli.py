"""Command-line interface: ``python -m repro <command> ...``.

Ten commands wrap the library for shell use:

``classify SCHEMA.dtd``
    Print the Definition 6-8 classification report of a DTD.

``validate SCHEMA.dtd DOC.xml``
    Standard validation (``D(T, r)`` membership) with per-node issues.

``check SCHEMA.dtd DOC.xml``
    Potential-validity check (Problem PV) with per-node failures — the
    editor-facing verdict: can this document still be completed?

``complete SCHEMA.dtd DOC.xml``
    Compute a valid extension (Definition 2) and print it, or explain why
    none exists.

``batch SCHEMA.dtd DOC.xml [DOC.xml ...]``
    Compile the schema once and check a whole corpus, optionally over a
    worker pool (``--workers N``); prints one verdict per document plus
    aggregate throughput statistics.  With ``--ring ADDR[,ADDR...]`` the
    corpus is instead streamed (``check-batch`` ops) to the owning
    shards of a validation-server ring; ``--read-policy`` picks how the
    documents spread over a schema's live replicas (``primary-first``
    pins them to the primary, ``round-robin`` / ``least-inflight``
    spread windows over all R owners).  ``--admission on`` runs the
    coarse admission pre-filter first — locally, or client-side before
    the wire in ring mode — so definite documents never reach a full
    backend.

``profile SCHEMA.dtd DOC.xml [DOC.xml ...]``
    Run a ``check`` or ``batch`` workload under :mod:`cProfile` and
    print the top-N functions by cumulative time — the first stop when
    a corpus checks slower than expected.  ``--mode batch`` profiles
    the batch pipeline instead of per-document checks; ``--repeat R``
    re-runs the workload R times so short corpora produce stable
    profiles.

``serve``
    Run the long-lived NDJSON validation server (TCP and/or a Unix
    socket) over one warm schema registry, optionally backed by the
    persistent artifact store and a process pool.  ``--ring N`` starts a
    local ring of N shard servers (consecutive ports / suffixed socket
    paths, one registry and store partition each) for development and
    smoke testing of the sharded topology; ``--replicas R`` publishes a
    ring view (epoch 1, replica-set size R) to every shard so replies
    carry epochs and clients route reads to any of R owners.
    ``--gossip on`` runs a SWIM-style gossip agent on every shard:
    membership truth then lives in the shards themselves (probe,
    suspect, refute, confirm down, mint epochs) and no coordinator is
    needed.  ``--verdict-cache N`` memoizes up to N verdicts per shard
    keyed by content digest; repeat documents are answered without
    parsing, the replies stamped ``"cached": true``.

``ring-status ADDR[,ADDR...]``
    Probe every shard of a running ring with the ``health`` op and print
    a liveness/epoch/traffic table; exits 0 when all shards answer, 1
    when any is down.  ``--metrics`` additionally scrapes each shard's
    ``metrics`` op and prints the ring-wide aggregate.  Instead of
    listing every ADDR, ``--discover ADDR`` bootstraps the member list
    from any one live shard's view — no coordinator required.

``metrics ADDR[,ADDR...]``
    Scrape every shard's ``metrics`` op and print ring-wide aggregates:
    counters summed, latency histograms merged, with p50/p90/p99 per op
    and per verdict backend.  ``--prometheus`` prints the merged
    snapshot as Prometheus text exposition instead.  Exits 1 when any
    shard is down (the aggregate over the survivors still prints).
    ``--discover ADDR`` bootstraps the member list like ``ring-status``.

``cache {stats,clear,warm}``
    Inspect, empty, or pre-populate the persistent artifact store.

Exit status: 0 for "yes" verdicts (and clean service runs), 1 for "no"
verdicts and runtime failures (a port that will not bind, a store that
will not write), 2 for usage/parse errors.  ``main`` always *returns*
the status — argparse's ``SystemExit`` on bad usage is caught and
converted — so embedding callers never have to trap exits.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.core.classify import classify_dtd
from repro.core.completion import CompletionError, complete_document
from repro.core.pv import PVChecker
from repro.dtd.model import DTD
from repro.dtd.parser import parse_dtd
from repro.errors import ReproError
from repro.service.batch import BatchChecker
from repro.service.registry import DEFAULT_REGISTRY
from repro.service.store import ArtifactStore, default_store_dir
from repro.validity.validator import DTDValidator
from repro.xmlmodel.parser import parse_xml
from repro.xmlmodel.serialize import to_xml
from repro.xmlmodel.tree import XmlDocument

__all__ = ["main"]

#: Usage/parse errors exit with this status (mirrors argparse's own code).
USAGE_ERROR = 2

#: Runtime failures (bind errors, unwritable stores) exit with this status.
RUNTIME_ERROR = 1

_ALGORITHMS = ("machine", "kernel", "figure5", "earley")

# Mirrors repro.server.protocol.READ_POLICIES without importing the
# server stack at CLI-parse time (a test keeps the two in lockstep).
_READ_POLICIES = ("primary-first", "round-robin", "least-inflight")


def _version() -> str:
    """The installed distribution version, or the source tree's fallback."""
    try:
        from importlib.metadata import version

        return version("repro-pv")
    except Exception:
        from repro import __version__

        return __version__


def _load_dtd(path: str, root: str | None) -> DTD:
    return parse_dtd(Path(path).read_text(), root=root, name=Path(path).stem)


def _load_document(path: str) -> XmlDocument:
    return parse_xml(Path(path).read_text())


def _cmd_classify(args: argparse.Namespace) -> int:
    report = classify_dtd(_load_dtd(args.schema, args.root))
    print(report.summary())
    if report.recursive_elements:
        print(f"  recursive elements: {', '.join(report.recursive_elements)}")
    if report.strong_recursive_elements:
        print(
            "  PV-strong recursive elements: "
            f"{', '.join(report.strong_recursive_elements)}"
        )
    if report.unusable_elements:
        print(f"  unusable elements: {', '.join(report.unusable_elements)}")
    if report.needs_depth_bound:
        print(
            "  note: PV-strong recursion — the Figure-5 recognizer needs a "
            "depth bound; the exact machine does not."
        )
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    dtd = _load_dtd(args.schema, args.root)
    report = DTDValidator(dtd).validate(_load_document(args.document))
    if report.valid:
        print("valid")
        return 0
    print(f"invalid ({len(report.issues)} issue(s)):")
    for issue in report.issues:
        print(f"  {issue}")
    return 1


def _cmd_check(args: argparse.Namespace) -> int:
    dtd = _load_dtd(args.schema, args.root)
    document = _load_document(args.document)
    admission = None
    served_coarse = False
    if args.admission != "off":
        from repro.core.coarse import CoarseChecker

        schema = DEFAULT_REGISTRY.get(dtd)
        admission = CoarseChecker(schema.coarse).check_document(document)
    if args.admission == "on" and admission is not None and admission.definite:
        from repro.service.dispatch import BackendDispatcher

        verdict = BackendDispatcher.coarse_verdict(admission)
        served_coarse = True
    else:
        verdict = PVChecker(dtd, algorithm=args.algorithm).check_document(document)
        if (
            admission is not None
            and admission.definite
            and (admission.outcome == "accept") != verdict.potentially_valid
        ):
            print(
                f"warning: coarse admission said {admission.outcome} but the "
                f"{args.algorithm} backend disagrees — please report this",
                file=sys.stderr,
            )
    note = ", coarse admission" if served_coarse else ""
    if verdict.potentially_valid:
        if served_coarse:
            print("potentially valid — the encoding can be completed "
                  "(coarse admission)")
        else:
            print("potentially valid — the encoding can be completed")
        return 0
    print(f"NOT potentially valid ({len(verdict.failures)} blocked node(s){note}):")
    for failure in verdict.failures:
        print(f"  {failure}")
    if verdict.depth_limited:
        print("  (verdict is relative to the configured depth bound)")
    return 1


def _cmd_batch(args: argparse.Namespace) -> int:
    if args.ring:
        return _cmd_batch_ring(args)
    schema = DEFAULT_REGISTRY.get(_load_dtd(args.schema, args.root))
    checker = BatchChecker(
        schema,
        algorithm=args.algorithm,
        workers=args.workers,
        admission=args.admission,
    )
    result = checker.check_paths(args.documents)
    for item in result.items:
        print(item)
    print(result.summary(), file=sys.stderr)
    if result.mismatch_count:
        print(
            f"warning: {result.mismatch_count} coarse admission "
            "mismatch(es) against the full backend — please report this",
            file=sys.stderr,
        )
    if args.stats:
        print(f"registry: {DEFAULT_REGISTRY.stats}", file=sys.stderr)
        pool = result.pool_registry
        if pool is not None:
            print(
                f"pool registry ({len(result.worker_stats)} worker(s)): {pool}",
                file=sys.stderr,
            )
    return 0 if result.all_ok else 1


def _cmd_batch_ring(args: argparse.Namespace) -> int:
    """Stream the corpus to a validation-server ring (``batch --ring``)."""
    from repro.server.client import ServerError
    from repro.server.protocol import ProtocolError
    from repro.server.ring import ShardedClient, member_label, parse_member

    try:
        members = [parse_member(text) for text in args.ring.split(",") if text]
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return USAGE_ERROR
    if not members:
        print("error: --ring needs at least one ADDR", file=sys.stderr)
        return USAGE_ERROR
    dtd_text = Path(args.schema).read_text()
    docs = [Path(path).read_text() for path in args.documents]
    with ShardedClient(
        members,
        replica_count=args.replicas,
        read_policy=args.read_policy,
        # Admission "on" turns on the client-side coarse pre-filter:
        # definite documents are answered from the cached per-fingerprint
        # summary, only the uncertain middle crosses the wire.  "audit"
        # is a server-side mode (serve --admission audit) and is rejected
        # by main() for the ring path.
        coarse_filter=args.admission == "on",
    ) as ring:
        try:
            # One schema, one batch — but the corpus scheduler applies
            # the read policy: under round-robin / least-inflight the
            # documents spread in windows over every live owning replica.
            results = ring.check_corpus(
                [(dtd_text, docs, args.root)], algorithm=args.algorithm
            )
        except ProtocolError as error:
            print(f"error: {error.message}", file=sys.stderr)
            # A bad schema (the ring client fingerprints it locally, so
            # ReproError arrives wrapped) is a usage error, same exit
            # code the local batch path gives parse errors; anything
            # else (e.g. a garbled reply) is a runtime failure.
            return USAGE_ERROR if error.code == "bad-dtd" else RUNTIME_ERROR
        except ServerError as error:
            # The shard rejected the batch (bad header, internal error).
            print(f"error: {error}", file=sys.stderr)
            return RUNTIME_ERROR
        except ConnectionError as error:
            # No shard reachable: a deployment failure, not bad usage.
            print(f"error: {error}", file=sys.stderr)
            return RUNTIME_ERROR
        replies, trailer = results[0]
        if replies is None:
            # The whole batch failed (surfaced in place by the corpus
            # path): unreachable ring or a server rejection.
            error = trailer.get("error") or {}
            print(
                f"error: {error.get('code')}: {error.get('message')}",
                file=sys.stderr,
            )
            return RUNTIME_ERROR
        all_ok = True
        for path, reply in zip(args.documents, replies):
            if not reply.get("ok"):
                all_ok = False
                error = reply.get("error") or {}
                print(f"{path}: ERROR {error.get('code')}: {error.get('message')}")
            elif reply["potentially_valid"]:
                print(f"{path}: potentially valid")
            else:
                all_ok = False
                count = len(reply["failures"])
                print(f"{path}: NOT potentially valid ({count} blocked node(s))")
        # The shard(s) that actually served the batch: one under
        # primary-first (failover aside), the live replica set under the
        # balanced policies.
        served_by = ring.ring_stats["requests_by_member"]
        shards = ", ".join(sorted(served_by)) or member_label(
            ring.ring.owner(ring.fingerprint(dtd_text, args.root))
        )
        print(
            f"{trailer['items']} document(s), {trailer['errors']} error(s) in "
            f"{trailer['elapsed_ms']:.1f} ms on shard(s) {shards} "
            f"(policy: {ring.read_policy}, "
            f"registry: {trailer['schema']['registry']})",
            file=sys.stderr,
        )
        if args.stats:
            stats = ring.ring_stats
            print(f"ring: {stats}", file=sys.stderr)
    return 0 if all_ok else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.server.server import ValidationServer

    host = None if args.no_tcp else args.host
    if host is None and args.unix is None:
        print("error: --no-tcp requires --unix PATH", file=sys.stderr)
        return USAGE_ERROR
    shards = args.ring

    def shard_store(index: int) -> ArtifactStore | None:
        if not args.store:
            return None
        # Each shard owns a disjoint slice of the schema space, so each
        # gets its own store partition — artifacts travel between shards
        # over the wire (put-artifact), not through a shared directory.
        if shards == 1:
            return ArtifactStore(args.store)
        return ArtifactStore(Path(args.store) / f"shard-{index}")

    events = None
    if args.events:
        from repro.obs.events import EventLog

        try:
            # One shared append-mode log: shards interleave whole lines
            # (the EventLog serializes writes), and every event carries
            # its member label.
            events = EventLog.to_path(args.events)
        except OSError as error:
            print(f"error: {error}", file=sys.stderr)
            return RUNTIME_ERROR

    gossip_on = args.gossip == "on"
    gossip_seeds: tuple[str, ...] = ()
    if args.gossip_seed:
        gossip_seeds = tuple(
            part.strip() for part in args.gossip_seed.split(",") if part.strip()
        )
    servers = [
        ValidationServer(
            store=shard_store(index),
            workers=args.workers,
            default_algorithm=args.algorithm,
            admission=args.admission,
            events=events,
            slow_ms=args.slow_ms,
            hot_limit=args.hot_limit,
            gossip=gossip_on,
            gossip_interval=args.gossip_interval,
            gossip_seeds=gossip_seeds,
            verdict_cache=args.verdict_cache,
        )
        for index in range(shards)
    ]

    def endpoints(index: int) -> tuple[int | None, str | None]:
        port = args.port
        if port and shards > 1:
            port = port + index
        unix = args.unix
        if unix is not None and shards > 1:
            unix = f"{unix}.{index}"
        return port, unix

    def shard_label(server: ValidationServer) -> str:
        # A shard's canonical ring label: the Unix path when it has one
        # (the ShardedClient hashes the same string), else host:port.
        if server.unix_path is not None:
            return server.unix_path
        assert server.tcp_address is not None
        return f"{server.tcp_address[0]}:{server.tcp_address[1]}"

    async def run() -> None:
        started: list[ValidationServer] = []
        try:
            for index, server in enumerate(servers):
                port, unix = endpoints(index)
                await server.start(host=host, port=port, unix_path=unix)
                started.append(server)
                name = f"shard {index}: " if shards > 1 else ""
                if server.tcp_address is not None:
                    print(
                        f"{name}listening on "
                        f"{server.tcp_address[0]}:{server.tcp_address[1]}",
                        file=sys.stderr,
                    )
                if server.unix_path is not None:
                    print(f"{name}listening on unix:{server.unix_path}",
                          file=sys.stderr)
                if server.store is not None:
                    print(f"{name}artifact store: {server.store.directory}",
                          file=sys.stderr)
            if shards > 1:
                from repro.server.protocol import ProtocolError

                # Publish the initial ring view in-process so every
                # reply carries an epoch, clients serve reads from the
                # R replicas of a fingerprint, and the advertised read
                # policy (if any) reaches policy-less clients.  Epoch 1
                # classically; with gossip on, each shard's agent has
                # already minted a self-only view, so the full view must
                # supersede the highest epoch minted so far (retrying
                # past any the agents mint while we publish).
                labels = [shard_label(server) for server in started]
                epoch = 1
                if gossip_on:
                    epoch = max(
                        (s.placement.epoch or 0) for s in started
                    ) + 1
                published = False
                while not published:
                    try:
                        for server in started:
                            server.set_ring_view(
                                epoch, labels, args.replicas,
                                read_policy=args.read_policy,
                            )
                        published = True
                    except ProtocolError:
                        epoch += 1  # a gossip agent minted past us; retry
                policy_note = (
                    f", read policy {args.read_policy}"
                    if args.read_policy
                    else ""
                )
                gossip_note = ", gossip on" if gossip_on else ""
                print(
                    f"ring view published: epoch {epoch}, "
                    f"{len(labels)} member(s), "
                    f"replicas {args.replicas}{policy_note}{gossip_note}",
                    file=sys.stderr,
                )
            await asyncio.gather(*(server.serve_forever() for server in started))
        finally:
            for server in started:
                await server.stop()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        print("shutting down", file=sys.stderr)
        return 0
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return RUNTIME_ERROR
    return 0


def _print_merged_metrics(merged: dict) -> None:
    """Ring-wide counter totals and latency quantiles from a merged
    metrics snapshot (shared by ``metrics`` and ``ring-status --metrics``)."""
    from repro.obs.metrics import (
        counter_value,
        histogram_entries,
        histogram_quantile,
    )

    print(
        "ring: "
        f"requests={counter_value(merged, 'repro_requests_total'):.0f}, "
        f"batch items={counter_value(merged, 'repro_batch_items_total'):.0f}, "
        f"errors={counter_value(merged, 'repro_errors_total'):.0f}, "
        f"slow={counter_value(merged, 'repro_slow_requests_total'):.0f}"
    )

    def table(title: str, name: str, label_key: str) -> None:
        entries = [
            entry for entry in histogram_entries(merged, name)
            if entry["count"]
        ]
        if not entries:
            return
        print(title)
        for entry in entries:
            key = entry["labels"].get(label_key, "?")
            quantiles = ", ".join(
                f"p{int(q * 100)}={(histogram_quantile(entry, q) or 0.0) * 1000.0:.3f}ms"
                for q in (0.5, 0.9, 0.99)
            )
            print(f"  {key}: n={entry['count']}, {quantiles}")

    table("latency by op:", "repro_request_seconds", "op")
    table("verdict latency by backend:", "repro_verdict_seconds", "backend")


def _discover_members(seed_text: str, timeout: float) -> list:
    """Bootstrap the shard list from one live shard's view.

    Connects to *seed_text*, reads the ``health`` reply's ``members``
    (the live labels of the view the shard holds — gossip-maintained or
    coordinator-published), and parses each into an address.  The seed
    itself is included even when the view omits it, so a solo shard is
    still discoverable.  Raises ``ValueError`` on an unparseable
    address and ``OSError``/server errors when the seed is dark.
    """
    from repro.server.client import ValidationClient
    from repro.server.ring import member_label, parse_member

    seed = parse_member(seed_text)
    with ValidationClient.connect(seed, timeout=timeout) as client:
        health = client.health()
    members = []
    seen: set[str] = set()
    for label in health.get("members") or []:
        if not isinstance(label, str) or not label:
            continue
        try:
            member = parse_member(label)
        except ValueError:
            continue
        if member_label(member) not in seen:
            seen.add(member_label(member))
            members.append(member)
    if member_label(seed) not in seen:
        members.insert(0, seed)
    return members


def _ring_members(args: argparse.Namespace, command: str) -> list | int:
    """The shard list of ``ring-status`` / ``metrics``: the positional
    ``ADDR[,ADDR...]``, or ``--discover ADDR`` via one live shard's
    view.  Returns the exit status instead of a list on failure."""
    from repro.server.ring import parse_member

    if args.members:
        try:
            members = [
                parse_member(text)
                for text in args.members.split(",")
                if text
            ]
        except ValueError as error:
            print(f"error: {error}", file=sys.stderr)
            return USAGE_ERROR
        if members:
            return members
        print(f"error: {command} needs at least one ADDR", file=sys.stderr)
        return USAGE_ERROR
    if args.discover:
        try:
            return _discover_members(args.discover, args.timeout)
        except ValueError as error:
            print(f"error: {error}", file=sys.stderr)
            return USAGE_ERROR
        except Exception as error:  # noqa: BLE001 - the seed shard is dark
            print(
                f"error: cannot discover from {args.discover}: {error}",
                file=sys.stderr,
            )
            return RUNTIME_ERROR
    print(
        f"error: {command} needs ADDR[,ADDR...] or --discover ADDR",
        file=sys.stderr,
    )
    return USAGE_ERROR


def _cmd_metrics(args: argparse.Namespace) -> int:
    """Scrape every shard's ``metrics`` op; print ring-wide aggregates."""
    from repro.obs.metrics import counter_value, merge_snapshots
    from repro.obs.promtext import render
    from repro.server.client import ValidationClient
    from repro.server.ring import member_label

    members = _ring_members(args, "metrics")
    if isinstance(members, int):
        return members
    all_up = True
    snapshots: list[tuple[str, dict]] = []
    for member in members:
        label = member_label(member)
        try:
            with ValidationClient.connect(member, timeout=args.timeout) as client:
                reply = client.metrics()
        except Exception as error:  # noqa: BLE001 - reported per shard
            all_up = False
            print(f"{label}: DOWN ({error})", file=sys.stderr)
            continue
        snapshots.append((label, reply.get("metrics") or {}))
    merged = merge_snapshots(snapshot for _label, snapshot in snapshots)
    if args.prometheus:
        print(render(merged), end="")
        return 0 if all_up else RUNTIME_ERROR
    for label, snapshot in snapshots:
        print(
            f"{label}: up, "
            f"requests={counter_value(snapshot, 'repro_requests_total'):.0f}, "
            f"errors={counter_value(snapshot, 'repro_errors_total'):.0f}"
        )
    _print_merged_metrics(merged)
    return 0 if all_up else RUNTIME_ERROR


def _cmd_ring_status(args: argparse.Namespace) -> int:
    """Probe every shard of a ring: liveness, epoch, traffic, registry."""
    from repro.server.client import ValidationClient
    from repro.server.ring import member_label

    members = _ring_members(args, "ring-status")
    if isinstance(members, int):
        return members
    all_up = True
    epochs: set[int] = set()
    metric_snapshots: list[dict] = []
    for member in members:
        label = member_label(member)
        try:
            with ValidationClient.connect(member, timeout=args.timeout) as client:
                health = client.health()
                stats = client.stats() if args.stats else None
                scraped = client.metrics() if args.metrics else None
        except Exception as error:  # noqa: BLE001 - reported per shard
            all_up = False
            print(f"{label}: DOWN ({error})")
            continue
        epoch = health.get("epoch")
        if isinstance(epoch, int):
            epochs.add(epoch)
        line = (
            f"{label}: up, epoch={epoch}, "
            f"uptime={health['uptime_seconds']:.1f}s, "
            f"requests={health['requests']}, "
            f"connections={health['connections']}"
        )
        print(line)
        if stats is not None:
            registry = stats["registry"]
            server = stats.get("server") or {}
            hot = stats.get("hot") or []
            # Inflight is the load signal the least-inflight read policy
            # balances on; hot is the per-fingerprint traffic top-N that
            # also feeds join prefetch.
            print(
                f"  registry: {registry['hits']} hit(s), "
                f"{registry['misses']} miss(es); "
                f"inflight: {server.get('inflight', 0)}; "
                f"hot schemas: "
                + (
                    ", ".join(f"{fp[:12]}...x{count}" for fp, count in hot[:5])
                    or "(none)"
                )
            )
        if scraped is not None:
            metric_snapshots.append(scraped.get("metrics") or {})
    if metric_snapshots:
        from repro.obs.metrics import merge_snapshots

        _print_merged_metrics(merge_snapshots(metric_snapshots))
    if len(epochs) > 1:
        print(
            f"warning: shards disagree on the ring epoch ({sorted(epochs)}) — "
            "a membership change is still propagating",
            file=sys.stderr,
        )
    return 0 if all_up else RUNTIME_ERROR


def _cmd_cache(args: argparse.Namespace) -> int:
    if args.action == "warm" and not args.schemas:
        print("error: cache warm needs at least one schema file", file=sys.stderr)
        return USAGE_ERROR
    if args.action != "warm" and args.schemas:
        print(f"error: cache {args.action} takes no schema files", file=sys.stderr)
        return USAGE_ERROR
    store = ArtifactStore(args.store or default_store_dir())
    if args.action == "stats":
        print(store.stats)
        for fingerprint in store.fingerprints():
            print(f"  {fingerprint}")
        return 0
    if args.action == "clear":
        removed = store.clear()
        print(f"removed {removed} artifact(s) from {store.directory}")
        return 0
    # warm: compile whatever the store does not already hold, saving
    # explicitly so an unwritable store is a loud runtime failure (the
    # registry's write-through deliberately degrades in silence).
    from repro.service.compiled import compile_schema, schema_fingerprint

    dtds = [_load_dtd(path, args.root) for path in args.schemas]
    try:
        for path, dtd in zip(args.schemas, dtds):
            fingerprint = schema_fingerprint(dtd)
            if store.load(fingerprint) is not None:
                print(f"{path}: {fingerprint[:16]}... (already stored)")
                continue
            store.save(compile_schema(dtd, fingerprint=fingerprint))
            print(f"{path}: {fingerprint[:16]}... (compiled)")
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return RUNTIME_ERROR
    print(store.stats)
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    """Profile a check/batch workload; print the cumulative-time top-N."""
    import cProfile
    import pstats

    dtd = _load_dtd(args.schema, args.root)
    texts = [Path(path).read_text() for path in args.documents]
    all_ok = True

    def run_check() -> None:
        nonlocal all_ok
        checker = PVChecker(dtd, algorithm=args.algorithm)
        for _ in range(args.repeat):
            for text in texts:
                if not checker.check_text(text).potentially_valid:
                    all_ok = False

    def run_batch() -> None:
        nonlocal all_ok
        checker = BatchChecker(
            DEFAULT_REGISTRY.get(dtd), algorithm=args.algorithm
        )
        for _ in range(args.repeat):
            result = checker.check_texts(texts, labels=args.documents)
            if not result.all_ok:
                all_ok = False

    workload = run_batch if args.mode == "batch" else run_check
    profile = cProfile.Profile()
    profile.enable()
    try:
        workload()
    finally:
        profile.disable()
    runs = len(texts) * args.repeat
    print(
        f"profiled {args.mode} of {len(texts)} document(s) x {args.repeat} "
        f"repeat(s) = {runs} check(s), algorithm {args.algorithm}",
        file=sys.stderr,
    )
    stats = pstats.Stats(profile, stream=sys.stdout)
    stats.sort_stats("cumulative").print_stats(args.top)
    return 0 if all_ok else 1


def _cmd_complete(args: argparse.Namespace) -> int:
    dtd = _load_dtd(args.schema, args.root)
    document = _load_document(args.document)
    try:
        result = complete_document(dtd, document)
    except CompletionError as error:
        print(f"no completion exists: {error}", file=sys.stderr)
        return 1
    print(to_xml(result.document))
    print(f"-- inserted {result.inserted} element(s)", file=sys.stderr)
    return 0


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Potential validity of document-centric XML (ICDE 2006).",
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {_version()}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    classify = sub.add_parser("classify", help="classify a DTD (Defs 6-8)")
    classify.add_argument("schema")
    classify.add_argument("--root", default=None, help="root element type")
    classify.set_defaults(handler=_cmd_classify)

    validate = sub.add_parser("validate", help="standard DTD validation")
    validate.add_argument("schema")
    validate.add_argument("document")
    validate.add_argument("--root", default=None)
    validate.set_defaults(handler=_cmd_validate)

    check = sub.add_parser("check", help="potential-validity check (Problem PV)")
    check.add_argument("schema")
    check.add_argument("document")
    check.add_argument("--root", default=None)
    check.add_argument(
        "--algorithm",
        choices=_ALGORITHMS,
        default="machine",
        help="checking backend (default: the exact machine)",
    )
    check.add_argument(
        "--admission",
        choices=("on", "off", "audit"),
        default="off",
        help=(
            "coarse-to-fine admission stage: on serves definite coarse "
            "verdicts without running the backend, audit runs both and "
            "warns on disagreement (default: off)"
        ),
    )
    check.set_defaults(handler=_cmd_check)

    batch = sub.add_parser(
        "batch", help="compile once, check a corpus (optionally in parallel)"
    )
    batch.add_argument("schema")
    batch.add_argument("documents", nargs="+", metavar="document")
    batch.add_argument("--root", default=None)
    batch.add_argument(
        "--algorithm",
        choices=_ALGORITHMS,
        default="machine",
        help="checking backend for every document",
    )
    batch.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes (1 = check inline, no pool)",
    )
    batch.add_argument(
        "--stats",
        action="store_true",
        help="also print schema-registry cache statistics",
    )
    batch.add_argument(
        "--ring",
        default=None,
        metavar="ADDR[,ADDR...]",
        help=(
            "stream the corpus to a validation-server ring instead of "
            "checking locally (ADDR is host:port or a unix socket path)"
        ),
    )
    batch.add_argument(
        "--replicas",
        type=int,
        default=1,
        metavar="R",
        help="replica-set size of the ring named by --ring (failover reads)",
    )
    batch.add_argument(
        "--read-policy",
        choices=_READ_POLICIES,
        default=None,
        help=(
            "how ring reads pick among a schema's live replicas "
            "(requires --ring; default: follow the ring's advertised "
            "policy, else primary-first)"
        ),
    )
    batch.add_argument(
        "--admission",
        choices=("on", "off", "audit"),
        default="off",
        help=(
            "coarse-to-fine admission stage: on short-circuits definite "
            "coarse verdicts (with --ring: client-side batch pre-filter "
            "over the cached summary), audit runs both locally and flags "
            "disagreements (default: off)"
        ),
    )
    batch.set_defaults(handler=_cmd_batch)

    profile = sub.add_parser(
        "profile", help="profile a check/batch workload with cProfile"
    )
    profile.add_argument("schema")
    profile.add_argument("documents", nargs="+", metavar="document")
    profile.add_argument("--root", default=None)
    profile.add_argument(
        "--mode",
        choices=("check", "batch"),
        default="check",
        help="workload shape: per-document checks or the batch pipeline",
    )
    profile.add_argument(
        "--algorithm",
        choices=_ALGORITHMS,
        default="machine",
        help="checking backend to profile",
    )
    profile.add_argument(
        "--top",
        type=int,
        default=15,
        metavar="N",
        help="print the top N functions by cumulative time (default: 15)",
    )
    profile.add_argument(
        "--repeat",
        type=int,
        default=1,
        metavar="R",
        help="run the workload R times for a stabler profile (default: 1)",
    )
    profile.set_defaults(handler=_cmd_profile)

    complete = sub.add_parser("complete", help="compute a valid extension")
    complete.add_argument("schema")
    complete.add_argument("document")
    complete.add_argument("--root", default=None)
    complete.set_defaults(handler=_cmd_complete)

    serve = sub.add_parser(
        "serve", help="run the long-lived NDJSON validation server"
    )
    serve.add_argument("--host", default="127.0.0.1", help="TCP bind address")
    serve.add_argument(
        "--port", type=int, default=8750, help="TCP port (0 = ephemeral)"
    )
    serve.add_argument(
        "--no-tcp",
        action="store_true",
        help="do not bind TCP (requires --unix)",
    )
    serve.add_argument(
        "--unix", default=None, metavar="PATH", help="also serve a Unix socket"
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=0,
        help="process-pool size for verdicts (0 = threads in-process)",
    )
    serve.add_argument(
        "--store",
        nargs="?",
        const=str(default_store_dir()),
        default=None,
        metavar="DIR",
        help=(
            "back the registry with the persistent artifact store "
            "(default directory when DIR is omitted)"
        ),
    )
    serve.add_argument(
        "--algorithm",
        choices=(*_ALGORITHMS, "auto"),
        default="auto",
        help="backend for requests that name none (default: auto-dispatch)",
    )
    serve.add_argument(
        "--admission",
        choices=("on", "off", "audit"),
        default="off",
        help=(
            "coarse-to-fine admission stage for auto-dispatched checks: "
            "on serves definite coarse verdicts without a backend, audit "
            "runs both and counts mismatches (default: off)"
        ),
    )
    serve.add_argument(
        "--ring",
        type=int,
        default=1,
        metavar="N",
        help=(
            "start a local ring of N shard servers (consecutive ports, "
            "socket paths suffixed .0..N-1, one store partition each)"
        ),
    )
    serve.add_argument(
        "--replicas",
        type=int,
        default=1,
        metavar="R",
        help=(
            "replica-set size published with the ring view: each schema "
            "fingerprint is owned by R shards (reads from any live one, "
            "artifacts fanned out to all R); requires --ring N >= R"
        ),
    )
    serve.add_argument(
        "--read-policy",
        choices=_READ_POLICIES,
        default=None,
        help=(
            "read policy advertised with the published ring view "
            "(requires --ring N >= 2): clients without an explicit "
            "policy follow it"
        ),
    )
    serve.add_argument(
        "--hot-limit",
        type=int,
        default=32,
        metavar="N",
        help=(
            "top-N hot fingerprints reported by the stats op and used "
            "for join prefetch (default: 32)"
        ),
    )
    serve.add_argument(
        "--slow-ms",
        type=float,
        default=None,
        metavar="MS",
        help=(
            "count requests slower than MS milliseconds (and log a "
            "slow-request event when --events is set)"
        ),
    )
    serve.add_argument(
        "--events",
        default=None,
        metavar="PATH",
        help="append JSON-line observability events to PATH",
    )
    serve.add_argument(
        "--verdict-cache",
        type=int,
        default=0,
        metavar="N",
        help=(
            "memoize up to N verdicts per shard, keyed by (schema "
            "fingerprint, document digest, algorithm); repeat documents "
            "are answered without parsing (default: 0, disabled)"
        ),
    )
    serve.add_argument(
        "--gossip",
        choices=("on", "off"),
        default="off",
        help=(
            "run a SWIM-style gossip membership agent on every shard: "
            "shards probe each other, suspect/confirm failures, and "
            "mint view epochs themselves — no coordinator needed "
            "(default: off, the classic coordinator-driven flow)"
        ),
    )
    serve.add_argument(
        "--gossip-interval",
        type=float,
        default=1.0,
        metavar="SECONDS",
        help="seconds between gossip probe rounds (default: 1.0)",
    )
    serve.add_argument(
        "--gossip-seed",
        default=None,
        metavar="ADDR[,ADDR...]",
        help=(
            "existing ring member(s) to announce this shard to; the "
            "join then propagates by gossip (multi-host scale-out)"
        ),
    )
    serve.set_defaults(handler=_cmd_serve)

    ring_status = sub.add_parser(
        "ring-status", help="probe the shards of a running validation ring"
    )
    ring_status.add_argument(
        "members",
        nargs="?",
        default=None,
        metavar="ADDR[,ADDR...]",
        help="shard addresses (host:port or unix socket paths)",
    )
    ring_status.add_argument(
        "--discover",
        default=None,
        metavar="ADDR",
        help=(
            "bootstrap the shard list from one live shard's view "
            "(instead of listing every ADDR); works with no "
            "coordinator running"
        ),
    )
    ring_status.add_argument(
        "--stats",
        action="store_true",
        help="also print each shard's registry and hot-schema statistics",
    )
    ring_status.add_argument(
        "--timeout",
        type=float,
        default=5.0,
        help="per-shard probe timeout, seconds",
    )
    ring_status.add_argument(
        "--metrics",
        action="store_true",
        help="also scrape each shard's metrics op and print the "
        "ring-wide aggregate",
    )
    ring_status.set_defaults(handler=_cmd_ring_status)

    metrics = sub.add_parser(
        "metrics", help="scrape and aggregate ring-wide metrics"
    )
    metrics.add_argument(
        "members",
        nargs="?",
        default=None,
        metavar="ADDR[,ADDR...]",
        help="shard addresses (host:port or unix socket paths)",
    )
    metrics.add_argument(
        "--discover",
        default=None,
        metavar="ADDR",
        help=(
            "bootstrap the shard list from one live shard's view "
            "(instead of listing every ADDR)"
        ),
    )
    metrics.add_argument(
        "--prometheus",
        action="store_true",
        help="print the merged snapshot as Prometheus text exposition",
    )
    metrics.add_argument(
        "--timeout",
        type=float,
        default=5.0,
        help="per-shard scrape timeout, seconds",
    )
    metrics.set_defaults(handler=_cmd_metrics)

    cache = sub.add_parser(
        "cache", help="manage the persistent compiled-artifact store"
    )
    cache.add_argument("action", choices=("stats", "clear", "warm"))
    cache.add_argument(
        "schemas", nargs="*", metavar="schema", help="DTD files (warm only)"
    )
    cache.add_argument(
        "--store",
        default=None,
        metavar="DIR",
        help=f"store directory (default: {default_store_dir()})",
    )
    cache.add_argument("--root", default=None, help="root element type (warm)")
    cache.set_defaults(handler=_cmd_cache)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = _build_parser()
    try:
        args = parser.parse_args(argv)
    except SystemExit as exit_:  # argparse exits on usage errors and --help
        if exit_.code is None or exit_.code == 0:
            return 0
        return exit_.code if isinstance(exit_.code, int) else USAGE_ERROR
    if args.handler is _cmd_batch and args.workers < 1:
        print("error: --workers must be >= 1", file=sys.stderr)
        return USAGE_ERROR
    if args.handler is _cmd_batch and args.ring and args.workers != 1:
        print("error: --ring and --workers are mutually exclusive", file=sys.stderr)
        return USAGE_ERROR
    if args.handler is _cmd_batch and args.replicas < 1:
        print("error: --replicas must be >= 1", file=sys.stderr)
        return USAGE_ERROR
    if args.handler is _cmd_batch and args.read_policy and not args.ring:
        print("error: --read-policy requires --ring", file=sys.stderr)
        return USAGE_ERROR
    if args.handler is _cmd_batch and args.ring and args.admission == "audit":
        print(
            "error: --admission audit is a server-side mode; start the ring "
            "with 'repro serve --admission audit' instead",
            file=sys.stderr,
        )
        return USAGE_ERROR
    if args.handler is _cmd_serve and args.workers < 0:
        print("error: --workers must be >= 0", file=sys.stderr)
        return USAGE_ERROR
    if args.handler is _cmd_serve and args.ring < 1:
        print("error: --ring must be >= 1", file=sys.stderr)
        return USAGE_ERROR
    if args.handler is _cmd_serve and not 1 <= args.replicas <= args.ring:
        print("error: --replicas must be between 1 and --ring N", file=sys.stderr)
        return USAGE_ERROR
    if args.handler is _cmd_serve and args.read_policy and args.ring < 2:
        print(
            "error: --read-policy requires a ring view (--ring N >= 2)",
            file=sys.stderr,
        )
        return USAGE_ERROR
    if args.handler is _cmd_serve and args.verdict_cache < 0:
        print("error: --verdict-cache must be >= 0", file=sys.stderr)
        return USAGE_ERROR
    if args.handler is _cmd_profile and args.top < 1:
        print("error: --top must be >= 1", file=sys.stderr)
        return USAGE_ERROR
    if args.handler is _cmd_profile and args.repeat < 1:
        print("error: --repeat must be >= 1", file=sys.stderr)
        return USAGE_ERROR
    if args.handler is _cmd_serve and args.hot_limit < 1:
        print("error: --hot-limit must be >= 1", file=sys.stderr)
        return USAGE_ERROR
    if args.handler is _cmd_serve and args.slow_ms is not None and args.slow_ms < 0:
        print("error: --slow-ms must be >= 0", file=sys.stderr)
        return USAGE_ERROR
    if args.handler is _cmd_serve and args.gossip_interval <= 0:
        print("error: --gossip-interval must be > 0", file=sys.stderr)
        return USAGE_ERROR
    if args.handler is _cmd_serve and args.gossip_seed:
        if args.gossip != "on":
            print("error: --gossip-seed requires --gossip on", file=sys.stderr)
            return USAGE_ERROR
        from repro.server.placement import parse_member

        for part in args.gossip_seed.split(","):
            if not part.strip():
                continue
            try:
                parse_member(part.strip())
            except ValueError:
                print(
                    f"error: cannot parse --gossip-seed member: {part.strip()}",
                    file=sys.stderr,
                )
                return USAGE_ERROR
    if args.handler in (_cmd_ring_status, _cmd_metrics) and (
        args.members and args.discover
    ):
        print(
            "error: ADDR[,ADDR...] and --discover are mutually exclusive",
            file=sys.stderr,
        )
        return USAGE_ERROR
    try:
        return args.handler(args)
    except BrokenPipeError:
        # Downstream closed stdout (e.g. `... | head`): not a usage error.
        # 128 + SIGPIPE, the shell's own convention for the same event.
        return 141
    except OSError as error:
        # Unreadable schema/document paths (missing, permissions, directory).
        print(f"error: {error}", file=sys.stderr)
        return USAGE_ERROR
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return USAGE_ERROR


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
