"""The throughput-oriented service layer.

The paper's promise is *amortized* schema work: after a one-time
compilation of the DTD (parse → analyze → ``DAG_T`` → machine tables →
content grammars) every potential-validity verdict is answered from the
compiled artifact alone.  The library layers below this package deliver
the per-verdict side of that promise; this package delivers the
amortization and the bulk-throughput side:

* :mod:`repro.service.compiled` — :class:`CompiledSchema`, the immutable
  one-time compilation artifact, keyed by a content hash of the DTD.
* :mod:`repro.service.registry` — :class:`SchemaRegistry`, an LRU cache of
  compiled artifacts with hit/miss/eviction statistics.  A process-wide
  default registry backs every :class:`~repro.core.pv.PVChecker`
  construction, so repeated checkers over the same schema share one
  artifact instead of recompiling.
* :mod:`repro.service.batch` — :class:`BatchChecker`, which fans a corpus
  of documents out over a ``multiprocessing`` pool.  Workers receive the
  compiled artifact once (at pool start), not per document, and the
  result carries aggregate throughput statistics.
* :mod:`repro.service.store` — :class:`ArtifactStore`, the persistent
  on-disk artifact cache (atomic writes, corruption-tolerant loads) that
  backs a registry across process restarts.
* :mod:`repro.service.dispatch` — :class:`BackendDispatcher`, per-document
  backend selection by document shape with an auditable decision log.

This is the architectural seam scaling work builds on: anything that can
obtain a :class:`CompiledSchema` — from memory, disk, or a peer — can
answer verdicts without ever touching DTD text again.  The asyncio
serving front over this layer lives in :mod:`repro.server`.
"""

from repro.service.batch import BatchChecker, BatchItem, BatchResult, check_batch
from repro.service.compiled import (
    CompiledSchema,
    clear_compile_caches,
    compile_schema,
    schema_fingerprint,
)
from repro.service.dispatch import (
    DEFAULT_POLICY,
    BackendDispatcher,
    DispatchDecision,
    DispatchedVerdict,
    DispatchPolicy,
    DocumentShape,
    measure_shape,
)
from repro.service.registry import (
    DEFAULT_REGISTRY,
    RegistryStats,
    SchemaRegistry,
    default_registry,
)
from repro.service.store import (
    ArtifactStore,
    StoreStats,
    default_store_dir,
)

__all__ = [
    "CompiledSchema",
    "compile_schema",
    "schema_fingerprint",
    "clear_compile_caches",
    "SchemaRegistry",
    "RegistryStats",
    "DEFAULT_REGISTRY",
    "default_registry",
    "BatchChecker",
    "BatchItem",
    "BatchResult",
    "check_batch",
    "ArtifactStore",
    "StoreStats",
    "default_store_dir",
    "BackendDispatcher",
    "DispatchPolicy",
    "DEFAULT_POLICY",
    "DispatchDecision",
    "DispatchedVerdict",
    "DocumentShape",
    "measure_shape",
]
