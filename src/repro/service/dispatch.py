"""Per-document backend selection with an auditable decision log.

The checking backends trade constant factors for generality (the full
contract lives in ``docs/BACKENDS.md``, kept in lockstep with
:data:`BACKENDS` by a test):

* ``kernel`` — the machine's merged-GSS semantics over dense integer
  tables; exact for every DTD class with the smallest exact constant,
* ``figure5`` — the paper's greedy recognizer; the cheapest per node, but
  its verdict for PV-strong recursive DTDs is only "within depth D",
* ``machine`` — the exact GSS machine over object graphs; the semantics
  reference the kernel is differentially pinned against,
* ``earley`` — the Section 3.3 content-grammar reference; slow, used as a
  cross-check.

:class:`BackendDispatcher` picks one per document from the document's
*shape* — element count, tree depth, and gap density (the fraction of
content tokens that are character-data runs, i.e. how "document-centric"
the instance is) — under a tunable :class:`DispatchPolicy`.  Every choice
is recorded as a :class:`DispatchDecision` in a bounded log, so a serving
deployment can answer "why did request 4711 run on the machine backend?"
after the fact, and can route a deterministic 1-in-N audit slice to the
Earley reference to cross-check the fast backends in production.
"""

from __future__ import annotations

import threading
from collections import Counter, deque
from dataclasses import dataclass

from repro.config import CheckerConfig, DEFAULT_CONFIG
from repro.core.pv import Algorithm, PVChecker, PVVerdict
from repro.dtd.model import DTD
from repro.service.compiled import CompiledSchema
from repro.service.registry import DEFAULT_REGISTRY, SchemaRegistry
from repro.xmlmodel.delta import SIGMA, content_symbols
from repro.xmlmodel.tree import XmlDocument, XmlElement

__all__ = [
    "BackendInfo",
    "BACKENDS",
    "DocumentShape",
    "measure_shape",
    "DispatchPolicy",
    "DEFAULT_POLICY",
    "DispatchDecision",
    "DispatchedVerdict",
    "BackendDispatcher",
]


@dataclass(frozen=True)
class BackendInfo:
    """One row of the backend contract (mirrored by ``docs/BACKENDS.md``).

    Attributes
    ----------
    name:
        The ``--algorithm`` token.
    exactness:
        What the verdict means: ``"exact"`` (Problem PV decided for every
        DTD class, no bound), ``"depth-bounded"`` (exact only up to the
        configured insertion depth; PV-strong recursive DTDs may need
        more), or ``"bounded-oracle"`` (the Definitions 2-3 brute-force
        search, only total for small bounds — a test oracle, not a
        serving backend).
    auto:
        Whether :meth:`BackendDispatcher.choose` ever selects it.
    summary:
        One line of what the backend is.
    """

    name: str
    exactness: str
    auto: bool
    summary: str


#: Every verdict tier, fastest exact first.  ``docs/BACKENDS.md`` renders
#: this table; ``tests/test_docs.py`` fails if the two drift apart.
BACKENDS: tuple[BackendInfo, ...] = (
    BackendInfo(
        name="kernel",
        exactness="exact",
        auto=True,
        summary="merged-GSS semantics over dense integer tables and bitmasks",
    ),
    BackendInfo(
        name="machine",
        exactness="exact",
        auto=True,
        summary="the exact GSS machine over object graphs (semantics reference)",
    ),
    BackendInfo(
        name="figure5",
        exactness="depth-bounded",
        auto=True,
        summary="the paper's greedy Figure 5 recognizer (smallest per-node cost)",
    ),
    BackendInfo(
        name="earley",
        exactness="exact",
        auto=True,
        summary="the Section 3.3 content-grammar Earley reference (audit tier)",
    ),
    BackendInfo(
        name="naive",
        exactness="bounded-oracle",
        auto=False,
        summary="brute-force Ext(w, T) search straight from Definitions 2-3",
    ),
)


@dataclass(frozen=True)
class DocumentShape:
    """The features backend selection looks at, computed in one walk."""

    elements: int
    depth: int
    content_tokens: int
    sigma_tokens: int

    @property
    def gap_density(self) -> float:
        """Character-data runs per content token (0.0 for element-only)."""
        return self.sigma_tokens / self.content_tokens if self.content_tokens else 0.0

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.elements} element(s), depth {self.depth}, "
            f"gap density {self.gap_density:.2f}"
        )


def measure_shape(document: XmlDocument | XmlElement) -> DocumentShape:
    """Measure *document* (elements, depth, ``Delta_T`` token counts)."""
    root = document.root if isinstance(document, XmlDocument) else document
    elements = 0
    max_depth = 0
    content_tokens = 0
    sigma_tokens = 0
    stack: list[tuple[XmlElement, int]] = [(root, 1)]
    while stack:
        node, depth = stack.pop()
        elements += 1
        max_depth = max(max_depth, depth)
        symbols = content_symbols(node)
        content_tokens += len(symbols)
        sigma_tokens += sum(1 for symbol in symbols if symbol == SIGMA)
        for child in node.element_children():
            stack.append((child, depth + 1))
    return DocumentShape(
        elements=elements,
        depth=max_depth,
        content_tokens=content_tokens,
        sigma_tokens=sigma_tokens,
    )


@dataclass(frozen=True)
class DispatchPolicy:
    """Thresholds steering :meth:`BackendDispatcher.choose`.

    Parameters
    ----------
    small_elements / shallow_depth:
        Documents at or under both bounds go to the greedy ``figure5``
        recognizer, whose per-node constant is the smallest.
    gap_heavy:
        Gap density at or above this routes to the exact backend even for
        small documents: dense character data multiplies the star-group
        alternatives the greedy recognizer enumerates.
    audit_every:
        When positive, every N-th decision is routed to the Earley
        reference instead, a deterministic in-production cross-check.
        ``0`` disables auditing.
    exact_backend:
        Which exact tier serves the routes that need exactness:
        ``"kernel"`` (default, the table-driven machine) or ``"machine"``
        (the object-graph reference — same verdicts, larger constant).
    """

    small_elements: int = 64
    shallow_depth: int = 8
    gap_heavy: float = 0.5
    audit_every: int = 0
    exact_backend: str = "kernel"

    def __post_init__(self) -> None:
        if self.small_elements < 0 or self.shallow_depth < 0:
            raise ValueError("policy thresholds must be non-negative")
        if not 0.0 <= self.gap_heavy <= 1.0:
            raise ValueError("gap_heavy must be a fraction in [0, 1]")
        if self.audit_every < 0:
            raise ValueError("audit_every must be >= 0 (0 disables audits)")
        if self.exact_backend not in ("kernel", "machine"):
            raise ValueError('exact_backend must be "kernel" or "machine"')


DEFAULT_POLICY = DispatchPolicy()


@dataclass(frozen=True)
class DispatchDecision:
    """One recorded backend choice (the audit-log entry)."""

    sequence: int
    algorithm: Algorithm
    shape: DocumentShape
    reason: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"#{self.sequence} -> {self.algorithm}: {self.reason} [{self.shape}]"


@dataclass(frozen=True)
class DispatchedVerdict:
    """A verdict bundled with the decision that produced it."""

    verdict: PVVerdict
    decision: DispatchDecision

    def __bool__(self) -> bool:
        return bool(self.verdict)


class BackendDispatcher:
    """Routes documents to backends by shape, remembering every choice.

    One checker per backend is built lazily over the shared compiled
    artifact, so dispatching never recompiles schema work; the dispatcher
    is exactly as warm as the registry entry behind it.
    """

    def __init__(
        self,
        schema: CompiledSchema | DTD,
        policy: DispatchPolicy = DEFAULT_POLICY,
        config: CheckerConfig = DEFAULT_CONFIG,
        registry: SchemaRegistry | None = None,
        log_size: int = 256,
    ) -> None:
        if log_size < 0:
            raise ValueError("log_size must be >= 0")
        if isinstance(schema, DTD):
            schema = (registry or DEFAULT_REGISTRY).get(schema)
        self.schema = schema
        self.policy = policy
        self.config = config
        self._checkers: dict[str, PVChecker] = {}
        self._log: deque[DispatchDecision] = deque(maxlen=log_size)
        self._counts: Counter[str] = Counter()
        self._sequence = 0
        # The server dispatches from multiple worker threads; the log,
        # counters, and checker cache are the only shared mutable state.
        self._lock = threading.Lock()

    # -- the policy ---------------------------------------------------------

    def choose(self, document: XmlDocument | XmlElement) -> DispatchDecision:
        """Pick a backend for *document* and record the decision."""
        shape = measure_shape(document)
        policy = self.policy
        with self._lock:
            self._sequence += 1
            sequence = self._sequence
        exact = policy.exact_backend
        if self.schema.is_pv_strong:
            algorithm, reason = exact, (
                f"PV-strong recursive DTD: only the exact {exact} backend "
                "answers without a depth bound"
            )
        elif policy.audit_every and sequence % policy.audit_every == 0:
            algorithm, reason = "earley", (
                f"scheduled audit (1 in {policy.audit_every}) against the "
                "Earley reference"
            )
        elif shape.gap_density >= policy.gap_heavy and shape.content_tokens:
            algorithm, reason = exact, (
                f"gap-heavy content (density {shape.gap_density:.2f} >= "
                f"{policy.gap_heavy:.2f})"
            )
        elif (
            shape.elements <= policy.small_elements
            and shape.depth <= policy.shallow_depth
        ):
            algorithm, reason = "figure5", (
                f"small and shallow (<= {policy.small_elements} elements, "
                f"depth <= {policy.shallow_depth}): greedy recognizer wins "
                "on constants"
            )
        else:
            algorithm, reason = exact, f"default exact backend ({exact})"
        decision = DispatchDecision(
            sequence=sequence,
            algorithm=algorithm,  # type: ignore[arg-type]
            shape=shape,
            reason=reason,
        )
        with self._lock:
            self._log.append(decision)
            self._counts[algorithm] += 1
        return decision

    # -- checking -----------------------------------------------------------

    def check_document(
        self, document: XmlDocument | XmlElement
    ) -> DispatchedVerdict:
        """Choose a backend, run it, and return verdict plus decision."""
        decision = self.choose(document)
        verdict = self._checker(decision.algorithm).check_document(document)
        return DispatchedVerdict(verdict=verdict, decision=decision)

    def checker_for(self, algorithm: Algorithm) -> PVChecker:
        """The cached checker for *algorithm*.

        Public so phase-timed callers (the server's instrumentation)
        can run :meth:`choose` and the verdict under separate timers
        without duplicating the checker cache.
        """
        return self._checker(algorithm)

    def _checker(self, algorithm: Algorithm) -> PVChecker:
        with self._lock:
            checker = self._checkers.get(algorithm)
        if checker is None:
            checker = self.schema.checker(algorithm, self.config)
            with self._lock:
                checker = self._checkers.setdefault(algorithm, checker)
        return checker

    # -- the audit log ------------------------------------------------------

    @property
    def decisions(self) -> tuple[DispatchDecision, ...]:
        """The most recent decisions, oldest first (bounded by ``log_size``)."""
        with self._lock:
            return tuple(self._log)

    @property
    def counts(self) -> dict[str, int]:
        """Total decisions per backend over the dispatcher's lifetime."""
        with self._lock:
            return dict(self._counts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BackendDispatcher({self.schema.fingerprint[:12]}..., "
            f"counts={self.counts})"
        )
