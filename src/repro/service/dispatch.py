"""Per-document backend selection with an auditable decision log.

The checking backends trade constant factors for generality (the full
contract lives in ``docs/BACKENDS.md``, kept in lockstep with
:data:`BACKENDS` by a test):

* ``kernel`` — the machine's merged-GSS semantics over dense integer
  tables; exact for every DTD class with the smallest exact constant,
* ``figure5`` — the paper's greedy recognizer; the cheapest per node, but
  its verdict for PV-strong recursive DTDs is only "within depth D",
* ``machine`` — the exact GSS machine over object graphs; the semantics
  reference the kernel is differentially pinned against,
* ``earley`` — the Section 3.3 content-grammar reference; slow, used as a
  cross-check.

:class:`BackendDispatcher` picks one per document from the document's
*shape* — element count, tree depth, and gap density (the fraction of
content tokens that are character-data runs, i.e. how "document-centric"
the instance is) — under a tunable :class:`DispatchPolicy`.  Every choice
is recorded as a :class:`DispatchDecision` in a bounded log, so a serving
deployment can answer "why did request 4711 run on the machine backend?"
after the fact, and can route a deterministic 1-in-N audit slice to the
Earley reference to cross-check the fast backends in production.

Ahead of all of that sits the **admission stage**
(``DispatchPolicy.admission``): a coarse-to-fine pre-filter over the
schema's :class:`~repro.core.coarse.CoarseSummary`.  With admission
``"on"``, documents the coarse pass decides definitely (``reject`` or
``accept``) short-circuit — no backend runs at all — and only the
``uncertain`` middle escalates through the shape rules above.  With
``"audit"``, the coarse pass runs and is *compared* against the full
backend verdict on every document (mismatches are flagged on the
decision), but the full verdict is always the one served.
"""

from __future__ import annotations

import threading
from collections import Counter, deque
from dataclasses import dataclass
from time import perf_counter

from repro.config import CheckerConfig, DEFAULT_CONFIG
from repro.core.coarse import CoarseChecker, CoarseVerdict
from repro.core.pv import Algorithm, NodeFailure, PVChecker, PVVerdict
from repro.dtd.model import DTD
from repro.service.cache import VerdictCache
from repro.service.compiled import CompiledSchema
from repro.service.registry import DEFAULT_REGISTRY, SchemaRegistry
from repro.xmlmodel.delta import SIGMA, content_symbols
from repro.xmlmodel.parser import parse_xml
from repro.xmlmodel.tree import XmlDocument, XmlElement

__all__ = [
    "BackendInfo",
    "BACKENDS",
    "DocumentShape",
    "measure_shape",
    "DispatchPolicy",
    "DEFAULT_POLICY",
    "DispatchDecision",
    "DispatchedVerdict",
    "BackendDispatcher",
]


@dataclass(frozen=True)
class BackendInfo:
    """One row of the backend contract (mirrored by ``docs/BACKENDS.md``).

    Attributes
    ----------
    name:
        The ``--algorithm`` token.
    exactness:
        What the verdict means: ``"exact"`` (Problem PV decided for every
        DTD class, no bound), ``"depth-bounded"`` (exact only up to the
        configured insertion depth; PV-strong recursive DTDs may need
        more), or ``"bounded-oracle"`` (the Definitions 2-3 brute-force
        search, only total for small bounds — a test oracle, not a
        serving backend).
    auto:
        Whether :meth:`BackendDispatcher.choose` ever selects it.
    summary:
        One line of what the backend is.
    """

    name: str
    exactness: str
    auto: bool
    summary: str


#: Every verdict tier, fastest exact first.  ``docs/BACKENDS.md`` renders
#: this table; ``tests/test_docs.py`` fails if the two drift apart.
BACKENDS: tuple[BackendInfo, ...] = (
    BackendInfo(
        name="kernel",
        exactness="exact",
        auto=True,
        summary="merged-GSS semantics over dense integer tables and bitmasks",
    ),
    BackendInfo(
        name="machine",
        exactness="exact",
        auto=True,
        summary="the exact GSS machine over object graphs (semantics reference)",
    ),
    BackendInfo(
        name="figure5",
        exactness="depth-bounded",
        auto=True,
        summary="the paper's greedy Figure 5 recognizer (smallest per-node cost)",
    ),
    BackendInfo(
        name="earley",
        exactness="exact",
        auto=True,
        summary="the Section 3.3 content-grammar Earley reference (audit tier)",
    ),
    BackendInfo(
        name="naive",
        exactness="bounded-oracle",
        auto=False,
        summary="brute-force Ext(w, T) search straight from Definitions 2-3",
    ),
)


@dataclass(frozen=True)
class DocumentShape:
    """The features backend selection looks at, computed in one walk."""

    elements: int
    depth: int
    content_tokens: int
    sigma_tokens: int

    @property
    def gap_density(self) -> float:
        """Character-data runs per content token (0.0 for element-only)."""
        return self.sigma_tokens / self.content_tokens if self.content_tokens else 0.0

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.elements} element(s), depth {self.depth}, "
            f"gap density {self.gap_density:.2f}"
        )


def measure_shape(document: XmlDocument | XmlElement) -> DocumentShape:
    """Measure *document* (elements, depth, ``Delta_T`` token counts)."""
    root = document.root if isinstance(document, XmlDocument) else document
    elements = 0
    max_depth = 0
    content_tokens = 0
    sigma_tokens = 0
    stack: list[tuple[XmlElement, int]] = [(root, 1)]
    while stack:
        node, depth = stack.pop()
        elements += 1
        max_depth = max(max_depth, depth)
        symbols = content_symbols(node)
        content_tokens += len(symbols)
        sigma_tokens += sum(1 for symbol in symbols if symbol == SIGMA)
        for child in node.element_children():
            stack.append((child, depth + 1))
    return DocumentShape(
        elements=elements,
        depth=max_depth,
        content_tokens=content_tokens,
        sigma_tokens=sigma_tokens,
    )


@dataclass(frozen=True)
class DispatchPolicy:
    """Thresholds steering :meth:`BackendDispatcher.choose`.

    Parameters
    ----------
    small_elements / shallow_depth:
        Documents at or under both bounds go to the greedy ``figure5``
        recognizer, whose per-node constant is the smallest.
    gap_heavy:
        Gap density at or above this routes to the exact backend even for
        small documents: dense character data multiplies the star-group
        alternatives the greedy recognizer enumerates.
    audit_every:
        When positive, every N-th decision is routed to the Earley
        reference instead, a deterministic in-production cross-check.
        ``0`` disables auditing.
    exact_backend:
        Which exact tier serves the routes that need exactness:
        ``"kernel"`` (default, the table-driven machine) or ``"machine"``
        (the object-graph reference — same verdicts, larger constant).
    admission:
        The coarse-to-fine admission stage: ``"off"`` (default — classic
        behavior, every document runs a full backend), ``"on"`` (definite
        coarse verdicts short-circuit; only ``uncertain`` escalates), or
        ``"audit"`` (the coarse pass runs on every document and is
        compared against the full verdict, which is always the one
        served — mismatches are flagged on the decision).
    """

    small_elements: int = 64
    shallow_depth: int = 8
    gap_heavy: float = 0.5
    audit_every: int = 0
    exact_backend: str = "kernel"
    admission: str = "off"

    def __post_init__(self) -> None:
        if self.small_elements < 0 or self.shallow_depth < 0:
            raise ValueError("policy thresholds must be non-negative")
        if not 0.0 <= self.gap_heavy <= 1.0:
            raise ValueError("gap_heavy must be a fraction in [0, 1]")
        if self.audit_every < 0:
            raise ValueError("audit_every must be >= 0 (0 disables audits)")
        if self.exact_backend not in ("kernel", "machine"):
            raise ValueError('exact_backend must be "kernel" or "machine"')
        if self.admission not in ("off", "on", "audit"):
            raise ValueError('admission must be "off", "on", or "audit"')


DEFAULT_POLICY = DispatchPolicy()


@dataclass(frozen=True)
class DispatchDecision:
    """One recorded backend choice (the audit-log entry).

    ``algorithm`` is what actually ran — a backend name, or ``"coarse"``
    when the admission stage short-circuited the document.  When the
    1-in-N audit slice displaces the shape rules, ``shadowed`` records
    the backend the shape rules would have chosen, so the log keeps
    *both* (the audited route and the displaced one).  ``admission`` is
    the coarse outcome when the admission stage ran (``None`` when off),
    and ``admission_mismatch`` flags an audit-mode disagreement between
    the coarse pass and the full verdict that was served.
    """

    sequence: int
    algorithm: Algorithm
    shape: DocumentShape
    reason: str
    shadowed: str | None = None
    admission: str | None = None
    admission_mismatch: bool = False

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"#{self.sequence} -> {self.algorithm}: {self.reason} [{self.shape}]"


@dataclass(frozen=True)
class DispatchedVerdict:
    """A verdict bundled with the decision that produced it."""

    verdict: PVVerdict
    decision: DispatchDecision

    def __bool__(self) -> bool:
        return bool(self.verdict)


class BackendDispatcher:
    """Routes documents to backends by shape, remembering every choice.

    One checker per backend is built lazily over the shared compiled
    artifact, so dispatching never recompiles schema work; the dispatcher
    is exactly as warm as the registry entry behind it.
    """

    def __init__(
        self,
        schema: CompiledSchema | DTD,
        policy: DispatchPolicy = DEFAULT_POLICY,
        config: CheckerConfig = DEFAULT_CONFIG,
        registry: SchemaRegistry | None = None,
        log_size: int = 256,
        verdict_cache: VerdictCache | int | None = None,
    ) -> None:
        if log_size < 0:
            raise ValueError("log_size must be >= 0")
        if isinstance(schema, DTD):
            schema = (registry or DEFAULT_REGISTRY).get(schema)
        self.schema = schema
        self.policy = policy
        self.config = config
        if isinstance(verdict_cache, int):
            verdict_cache = VerdictCache(verdict_cache) if verdict_cache > 0 else None
        self.verdict_cache = verdict_cache
        #: Cache keys carry the routing policy, so dispatchers with
        #: different admission modes sharing one cache never alias.
        self._cache_mode = f"auto:{policy.admission}"
        self._checkers: dict[str, PVChecker] = {}
        self._coarse: CoarseChecker | None = None
        self._log: deque[DispatchDecision] = deque(maxlen=log_size)
        self._counts: Counter[str] = Counter()
        self._sequence = 0
        # The server dispatches from multiple worker threads; the log,
        # counters, and checker cache are the only shared mutable state.
        self._lock = threading.Lock()

    # -- the policy ---------------------------------------------------------

    def _next_sequence(self) -> int:
        with self._lock:
            self._sequence += 1
            return self._sequence

    def _record(self, decision: DispatchDecision) -> None:
        with self._lock:
            self._log.append(decision)
            self._counts[decision.algorithm] += 1

    def _decide(
        self, shape: DocumentShape, sequence: int
    ) -> tuple[str, str, str | None]:
        """The shape rules: ``(algorithm, reason, shadowed)``.

        ``shadowed`` is the backend the shape rules picked when the
        1-in-N audit slice displaced it — the audit-log entry records
        both, so the slice never hides what would have served.
        """
        policy = self.policy
        exact = policy.exact_backend
        if self.schema.is_pv_strong:
            shaped, shape_reason = exact, (
                f"PV-strong recursive DTD: only the exact {exact} backend "
                "answers without a depth bound"
            )
        elif shape.gap_density >= policy.gap_heavy and shape.content_tokens:
            shaped, shape_reason = exact, (
                f"gap-heavy content (density {shape.gap_density:.2f} >= "
                f"{policy.gap_heavy:.2f})"
            )
        elif (
            shape.elements <= policy.small_elements
            and shape.depth <= policy.shallow_depth
        ):
            shaped, shape_reason = "figure5", (
                f"small and shallow (<= {policy.small_elements} elements, "
                f"depth <= {policy.shallow_depth}): greedy recognizer wins "
                "on constants"
            )
        else:
            shaped, shape_reason = exact, f"default exact backend ({exact})"
        if policy.audit_every and sequence % policy.audit_every == 0:
            return "earley", (
                f"scheduled audit (1 in {policy.audit_every}) against the "
                f"Earley reference; displaced shape choice {shaped}: "
                f"{shape_reason}"
            ), shaped
        return shaped, shape_reason, None

    def choose(self, document: XmlDocument | XmlElement) -> DispatchDecision:
        """Pick a backend for *document* and record the decision."""
        shape = measure_shape(document)
        sequence = self._next_sequence()
        algorithm, reason, shadowed = self._decide(shape, sequence)
        decision = DispatchDecision(
            sequence=sequence,
            algorithm=algorithm,  # type: ignore[arg-type]
            shape=shape,
            reason=reason,
            shadowed=shadowed,
        )
        self._record(decision)
        return decision

    # -- the admission stage ------------------------------------------------

    def admit(self, document: XmlDocument | XmlElement) -> CoarseVerdict:
        """Run the coarse admission pass over *document*.

        Pure — nothing is recorded; callers that serve the outcome (or
        escalate) record the combined decision.  The checker is built
        lazily over the artifact's summary, so admission never costs a
        schema recompile.
        """
        with self._lock:
            checker = self._coarse
        if checker is None:
            checker = CoarseChecker(self.schema.coarse)
            with self._lock:
                if self._coarse is None:
                    self._coarse = checker
                checker = self._coarse
        return checker.check_document(document)

    @staticmethod
    def coarse_verdict(admission: CoarseVerdict) -> PVVerdict:
        """A definite admission outcome as a served :class:`PVVerdict`."""
        if admission.outcome == "accept":
            return PVVerdict(True)
        if admission.outcome != "reject":  # pragma: no cover - guarded by callers
            raise ValueError("only definite admission outcomes become verdicts")
        failure = NodeFailure(
            path=admission.path,
            element=admission.element,
            symbols=(),
            reason=admission.reason,
        )
        return PVVerdict(False, failures=(failure,), depth_limited=False)

    # -- checking -----------------------------------------------------------

    def check_document(
        self,
        document: XmlDocument | XmlElement,
        timings: dict[str, float] | None = None,
    ) -> DispatchedVerdict:
        """Admit, choose a backend if needed, run it, and record it all.

        With admission ``"on"`` a definite coarse outcome is served
        directly (``algorithm == "coarse"``); with ``"audit"`` the full
        backend always runs and the decision flags any disagreement.
        When *timings* is given it receives the ``admission``,
        ``decide``, and ``verdict`` phase durations in seconds (only the
        phases that actually ran), so the server's phase histograms stay
        honest without a second dispatch path.
        """
        mode = self.policy.admission
        admission: CoarseVerdict | None = None
        if mode != "off":
            started = perf_counter()
            admission = self.admit(document)
            if timings is not None:
                timings["admission"] = perf_counter() - started
            if mode == "on" and admission.definite:
                shape = measure_shape(document)
                decision = DispatchDecision(
                    sequence=self._next_sequence(),
                    algorithm="coarse",  # type: ignore[arg-type]
                    shape=shape,
                    reason=(
                        f"admission {admission.outcome}: "
                        f"{admission.reason or 'coarse pass was definite'}"
                    ),
                    admission=admission.outcome,
                )
                self._record(decision)
                return DispatchedVerdict(
                    verdict=self.coarse_verdict(admission), decision=decision
                )
        started = perf_counter()
        shape = measure_shape(document)
        sequence = self._next_sequence()
        algorithm, reason, shadowed = self._decide(shape, sequence)
        if timings is not None:
            timings["decide"] = perf_counter() - started
        started = perf_counter()
        verdict = self._checker(algorithm).check_document(document)
        if timings is not None:
            timings["verdict"] = perf_counter() - started
        mismatch = (
            admission is not None
            and admission.definite
            and (admission.outcome == "accept") != verdict.potentially_valid
        )
        decision = DispatchDecision(
            sequence=sequence,
            algorithm=algorithm,  # type: ignore[arg-type]
            shape=shape,
            reason=reason,
            shadowed=shadowed,
            admission=None if admission is None else admission.outcome,
            admission_mismatch=mismatch,
        )
        self._record(decision)
        return DispatchedVerdict(verdict=verdict, decision=decision)

    def check_text(
        self,
        text: str,
        timings: dict[str, float] | None = None,
    ) -> tuple[DispatchedVerdict, bool]:
        """Check document *text*, serving repeats from the verdict cache.

        Returns ``(dispatched, cached)``.  A hit replays the stored
        :class:`DispatchedVerdict` without parsing a byte — the decision
        log and counters are untouched (the cache sits *in front of* the
        dispatcher), which is why callers surface the ``cached`` flag.
        On a miss the classic parse → dispatch pipeline runs and the
        result is stored under ``(fingerprint, blake2b(text), policy)``.
        """
        cache = self.verdict_cache
        if cache is None:
            document = parse_xml(text)
            return self.check_document(document, timings), False
        key = cache.key(self.schema.fingerprint, text, self._cache_mode)
        hit = cache.get(key)
        if hit is not None:
            return hit, True
        document = parse_xml(text)
        dispatched = self.check_document(document, timings)
        cache.put(key, dispatched)
        return dispatched, False

    def checker_for(self, algorithm: Algorithm) -> PVChecker:
        """The cached checker for *algorithm*.

        Public so phase-timed callers (the server's instrumentation)
        can run :meth:`choose` and the verdict under separate timers
        without duplicating the checker cache.
        """
        return self._checker(algorithm)

    def _checker(self, algorithm: Algorithm) -> PVChecker:
        with self._lock:
            checker = self._checkers.get(algorithm)
        if checker is None:
            checker = self.schema.checker(algorithm, self.config)
            with self._lock:
                checker = self._checkers.setdefault(algorithm, checker)
        return checker

    # -- the audit log ------------------------------------------------------

    @property
    def decisions(self) -> tuple[DispatchDecision, ...]:
        """The most recent decisions, oldest first (bounded by ``log_size``)."""
        with self._lock:
            return tuple(self._log)

    @property
    def counts(self) -> dict[str, int]:
        """Total decisions per backend over the dispatcher's lifetime."""
        with self._lock:
            return dict(self._counts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BackendDispatcher({self.schema.fingerprint[:12]}..., "
            f"counts={self.counts})"
        )
