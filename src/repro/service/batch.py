"""Parallel batch potential-validity checking.

:class:`BatchChecker` turns the per-document :class:`~repro.core.pv.PVChecker`
into a corpus engine: one compiled artifact, N documents, optionally a
``multiprocessing`` pool.  The design follows the streaming/bulk-validation
literature's cost model — schema compilation is the fixed cost, documents
are the traffic — so the artifact crosses the process boundary exactly
once per worker (via the pool initializer), and each task message carries
only the document text.

Worker protocol
---------------
Documents are shipped as serialized XML rather than pickled DOM trees:
the text form is smaller, immune to recursion-depth pickle hazards on
deep trees, and makes ``check_paths`` a zero-copy dispatch (workers read
and parse locally).  Results come back as plain
:class:`~repro.core.pv.PVVerdict` dataclasses.  A document that fails to
parse does not poison the batch — it yields a :class:`BatchItem` with
``error`` set and counts as "not potentially valid" in the aggregate.

With ``workers <= 1`` everything runs inline on one shared checker — the
same code path the differential tests compare against — so worker count
can never change a verdict, only the wall time.

The coarse-to-fine **admission stage** composes with both paths: with
``admission="on"`` each document first runs the schema's
:class:`~repro.core.coarse.CoarseChecker`, definite outcomes are served
without touching the full backend (``BatchItem.coarse`` is set), and only
the uncertain middle escalates; with ``"audit"`` the full backend always
runs and disagreements are flagged per item.  The coarse summary rides
inside the compiled artifact, so pool workers admit locally for free.
"""

from __future__ import annotations

import multiprocessing
import os
from dataclasses import dataclass, field
from pathlib import Path
from time import perf_counter
from typing import Iterable, Sequence

from repro.config import CheckerConfig, DEFAULT_CONFIG
from repro.core.coarse import CoarseChecker
from repro.core.pv import Algorithm, PVChecker, PVVerdict
from repro.dtd.model import DTD
from repro.errors import ReproError
from repro.service.cache import VerdictCache
from repro.service.compiled import CompiledSchema
from repro.service.registry import DEFAULT_REGISTRY, RegistryStats, SchemaRegistry
from repro.xmlmodel.serialize import to_xml
from repro.xmlmodel.tree import XmlDocument

__all__ = ["BatchItem", "BatchResult", "BatchChecker", "check_batch"]


@dataclass(frozen=True)
class BatchItem:
    """The outcome for one document of a batch.

    ``admission`` is the coarse outcome when the admission stage ran
    (``None`` when off); ``coarse`` marks verdicts the admission stage
    served without running a full backend; ``admission_mismatch`` flags
    an audit-mode disagreement between a definite coarse outcome and the
    full verdict (which is the one served).
    """

    index: int
    label: str
    verdict: PVVerdict | None
    error: str | None = None
    admission: str | None = None
    coarse: bool = False
    admission_mismatch: bool = False

    @property
    def ok(self) -> bool:
        """True iff the document parsed and is potentially valid."""
        return self.error is None and bool(self.verdict)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        if self.error is not None:
            return f"{self.label}: error: {self.error}"
        assert self.verdict is not None
        if self.verdict.potentially_valid:
            return f"{self.label}: potentially valid"
        return (
            f"{self.label}: NOT potentially valid "
            f"({len(self.verdict.failures)} blocked node(s))"
        )


@dataclass(frozen=True)
class BatchResult:
    """Per-document verdicts plus aggregate throughput statistics."""

    items: tuple[BatchItem, ...]
    elapsed: float
    workers: int
    algorithm: str
    fingerprint: str
    #: One registry snapshot per pool worker (empty when checked inline).
    worker_stats: tuple[RegistryStats, ...] = field(default=())
    #: The admission mode the batch ran under (``off``/``on``/``audit``).
    admission: str = "off"

    @property
    def pool_registry(self) -> RegistryStats | None:
        """Counter-wise sum of the workers' registry statistics.

        ``None`` for inline runs; for pooled runs, ``hits`` counts the
        documents each worker answered from its warm artifact, so the
        parent's single compile plus these hits is the whole pool's cache
        story.
        """
        if not self.worker_stats:
            return None
        total = RegistryStats()
        for stats in self.worker_stats:
            total = total.merged(stats)
        return total

    @property
    def total(self) -> int:
        return len(self.items)

    @property
    def ok_count(self) -> int:
        return sum(1 for item in self.items if item.ok)

    @property
    def rejected_count(self) -> int:
        """Documents that parsed but are not potentially valid."""
        return sum(
            1 for item in self.items if item.error is None and not item.ok
        )

    @property
    def error_count(self) -> int:
        return sum(1 for item in self.items if item.error is not None)

    @property
    def coarse_count(self) -> int:
        """Documents the admission stage served without a full backend."""
        return sum(1 for item in self.items if item.coarse)

    @property
    def mismatch_count(self) -> int:
        """Audit-mode coarse/full disagreements (should stay at zero)."""
        return sum(1 for item in self.items if item.admission_mismatch)

    @property
    def all_ok(self) -> bool:
        return self.ok_count == self.total

    @property
    def documents_per_second(self) -> float:
        return self.total / self.elapsed if self.elapsed > 0 else float("inf")

    def summary(self) -> str:
        """One-line aggregate the batch CLI prints after the verdicts."""
        line = (
            f"{self.total} document(s): {self.ok_count} potentially valid, "
            f"{self.rejected_count} not, {self.error_count} error(s) — "
            f"{self.elapsed:.3f}s with {self.workers} worker(s) "
            f"({self.documents_per_second:.1f} docs/s, "
            f"algorithm={self.algorithm})"
        )
        if self.admission != "off":
            line += (
                f" [admission {self.admission}: {self.coarse_count} "
                f"short-circuited, {self.mismatch_count} mismatch(es)]"
            )
        return line


# -- worker-side state ------------------------------------------------------
#
# Set once per worker process by the pool initializer; tasks then carry only
# (index, label, xml_text).  Top-level (module) names so the fork/spawn
# pickling of the initializer and task function resolves by reference.

_WORKER_CHECKER: PVChecker | None = None
_WORKER_REGISTRY: SchemaRegistry | None = None
_WORKER_FINGERPRINT: str | None = None
_WORKER_ADMIT: CoarseChecker | None = None
_WORKER_ADMISSION: str = "off"


def _init_worker(
    schema: CompiledSchema, algorithm: str, config: CheckerConfig, admission: str
) -> None:
    global _WORKER_CHECKER, _WORKER_REGISTRY, _WORKER_FINGERPRINT
    global _WORKER_ADMIT, _WORKER_ADMISSION
    # A fresh registry (never the fork-inherited process default, whose
    # counters belong to the parent) seeded with the shipped artifact:
    # its statistics then describe exactly this worker's cache traffic.
    _WORKER_REGISTRY = SchemaRegistry()
    _WORKER_REGISTRY.put(schema)
    _WORKER_FINGERPRINT = schema.fingerprint
    _WORKER_CHECKER = PVChecker(
        schema.dtd, config=config, algorithm=algorithm, compiled=schema
    )
    # The coarse summary travels inside the pickled artifact, so each
    # worker admits locally without recompiling anything.
    _WORKER_ADMISSION = admission
    _WORKER_ADMIT = (
        CoarseChecker(schema.coarse) if admission != "off" else None
    )


def _check_one(task: tuple[int, str, str]) -> tuple[BatchItem, int, RegistryStats]:
    index, label, text = task
    assert _WORKER_CHECKER is not None, "pool initializer did not run"
    assert _WORKER_REGISTRY is not None and _WORKER_FINGERPRINT is not None
    # The per-document cache access, recorded: each task is one lookup of
    # the shipped artifact, so pool-wide hit counts mean "documents
    # answered without recompiling anywhere".
    _WORKER_REGISTRY.lookup(_WORKER_FINGERPRINT, count=True)
    item = _check_text(
        _WORKER_CHECKER, index, label, text,
        admit=_WORKER_ADMIT, mode=_WORKER_ADMISSION,
    )
    return item, os.getpid(), _WORKER_REGISTRY.stats


def _check_text(
    checker: PVChecker,
    index: int,
    label: str,
    text: str,
    admit: CoarseChecker | None = None,
    mode: str = "off",
    cache: VerdictCache | None = None,
) -> BatchItem:
    from repro.service.dispatch import BackendDispatcher
    from repro.xmlmodel.parser import parse_xml

    if admit is None:
        # The classic (no-admission) path checks straight from text: on
        # the kernel tier that is the fused single-pass hot path, and a
        # verdict cache — keyed by schema fingerprint, content digest and
        # backend — serves repeats without parsing at all.  Parse and
        # check failures surface identically to the parse-first pipeline.
        key = None
        if cache is not None:
            key = cache.key(checker.compiled.fingerprint, text, checker.algorithm)
            hit = cache.get(key)
            if hit is not None:
                return BatchItem(index=index, label=label, verdict=hit)
        try:
            verdict = checker.check_text(text)
        except ReproError as error:
            return BatchItem(
                index=index, label=label, verdict=None, error=str(error)
            )
        if cache is not None:
            cache.put(key, verdict)
        return BatchItem(index=index, label=label, verdict=verdict)
    try:
        document = parse_xml(text)
    except ReproError as error:
        return BatchItem(index=index, label=label, verdict=None, error=str(error))
    admission = admit.check_document(document)
    if mode == "on" and admission is not None and admission.definite:
        return BatchItem(
            index=index,
            label=label,
            verdict=BackendDispatcher.coarse_verdict(admission),
            admission=admission.outcome,
            coarse=True,
        )
    try:
        verdict = checker.check_document(document)
    except ReproError as error:
        return BatchItem(index=index, label=label, verdict=None, error=str(error))
    mismatch = (
        admission is not None
        and admission.definite
        and (admission.outcome == "accept") != verdict.potentially_valid
    )
    return BatchItem(
        index=index,
        label=label,
        verdict=verdict,
        admission=None if admission is None else admission.outcome,
        admission_mismatch=mismatch,
    )


class BatchChecker:
    """Checks document corpora against one compiled schema.

    Parameters
    ----------
    schema:
        A :class:`CompiledSchema`, or a bare :class:`DTD` which is resolved
        through *registry* (the process default unless overridden).
    algorithm:
        Backend for every document
        (``machine``/``kernel``/``figure5``/``earley``).
    workers:
        Pool size.  ``1`` (the default) checks inline in this process;
        ``N > 1`` forks a pool whose workers each receive the compiled
        artifact once.
    admission:
        The coarse-to-fine admission stage: ``"off"`` (default), ``"on"``
        (definite coarse outcomes short-circuit the full backend), or
        ``"audit"`` (coarse runs and is compared, full verdict served).
    verdict_cache:
        A :class:`VerdictCache` (or a positive int size; ``0``/``None``
        disables) serving repeat documents in O(1) on the inline
        no-admission path.  Pool workers never share it — cache state
        lives in the parent process only.
    """

    def __init__(
        self,
        schema: CompiledSchema | DTD,
        algorithm: Algorithm = "machine",
        workers: int = 1,
        config: CheckerConfig = DEFAULT_CONFIG,
        registry: SchemaRegistry | None = None,
        admission: str = "off",
        verdict_cache: VerdictCache | int | None = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if admission not in ("off", "on", "audit"):
            raise ValueError('admission must be "off", "on", or "audit"')
        if isinstance(schema, DTD):
            schema = (registry or DEFAULT_REGISTRY).get(schema)
        self.schema = schema
        self.algorithm: Algorithm = algorithm
        self.workers = workers
        self.config = config
        self.admission = admission
        if isinstance(verdict_cache, int):
            verdict_cache = VerdictCache(verdict_cache) if verdict_cache > 0 else None
        self.verdict_cache = verdict_cache

    # -- corpus entry points -----------------------------------------------

    def check_texts(
        self, texts: Sequence[str], labels: Sequence[str] | None = None
    ) -> BatchResult:
        """Check serialized documents (the native batch representation)."""
        if labels is None:
            labels = [f"doc[{index}]" for index in range(len(texts))]
        if len(labels) != len(texts):
            raise ValueError("labels must pair 1:1 with texts")
        tasks = [
            (index, label, text)
            for index, (label, text) in enumerate(zip(labels, texts))
        ]
        return self._run(tasks)

    def check_paths(self, paths: Iterable[str | Path]) -> BatchResult:
        """Check documents stored in files; labels are the paths.

        An unreadable file (missing, permissions, a directory) does not
        abort the batch: it yields a :class:`BatchItem` with ``error`` set,
        like a document that fails to parse.
        """
        tasks: list[tuple[int, str, str]] = []
        unreadable: list[BatchItem] = []
        for index, path in enumerate(Path(path) for path in paths):
            try:
                tasks.append((index, str(path), path.read_text()))
            except OSError as error:
                unreadable.append(
                    BatchItem(
                        index=index, label=str(path), verdict=None, error=str(error)
                    )
                )
        return self._run(tasks, pre_errors=unreadable)

    def _run(
        self,
        tasks: list[tuple[int, str, str]],
        pre_errors: list[BatchItem] | None = None,
    ) -> BatchResult:
        started = perf_counter()
        worker_stats: tuple[RegistryStats, ...] = ()
        if self.workers == 1 or len(tasks) <= 1:
            used_workers = 1
            checker = self.schema.checker(self.algorithm, self.config)
            admit = (
                CoarseChecker(self.schema.coarse)
                if self.admission != "off"
                else None
            )
            cache = self.verdict_cache if self.admission == "off" else None
            items = [
                _check_text(
                    checker, *task, admit=admit, mode=self.admission, cache=cache
                )
                for task in tasks
            ]
        else:
            used_workers = self.workers
            items, worker_stats = self._check_parallel(tasks)
        elapsed = perf_counter() - started
        items.extend(pre_errors or ())
        items.sort(key=lambda item: item.index)
        return BatchResult(
            items=tuple(items),
            elapsed=elapsed,
            workers=used_workers,
            algorithm=self.algorithm,
            fingerprint=self.schema.fingerprint,
            worker_stats=worker_stats,
            admission=self.admission,
        )

    def check_documents(self, documents: Sequence[XmlDocument]) -> BatchResult:
        """Check in-memory documents (serialized for worker transport)."""
        return self.check_texts([to_xml(document) for document in documents])

    # -- the pool -----------------------------------------------------------

    def _check_parallel(
        self, tasks: list[tuple[int, str, str]]
    ) -> tuple[list[BatchItem], tuple[RegistryStats, ...]]:
        context = multiprocessing.get_context()
        chunksize = max(1, len(tasks) // (self.workers * 4))
        with context.Pool(
            processes=self.workers,
            initializer=_init_worker,
            initargs=(self.schema, self.algorithm, self.config, self.admission),
        ) as pool:
            outcomes = list(pool.map(_check_one, tasks, chunksize=chunksize))
        items = [item for item, _pid, _stats in outcomes]
        # Each task ships its worker's running counters; the last snapshot
        # per pid (the one with the most lookups) is that worker's total.
        latest: dict[int, RegistryStats] = {}
        for _item, pid, stats in outcomes:
            current = latest.get(pid)
            if current is None or stats.lookups > current.lookups:
                latest[pid] = stats
        return items, tuple(latest[pid] for pid in sorted(latest))


def check_batch(
    dtd: DTD | CompiledSchema,
    documents: Sequence[XmlDocument],
    algorithm: Algorithm = "machine",
    workers: int = 1,
    config: CheckerConfig = DEFAULT_CONFIG,
    admission: str = "off",
) -> BatchResult:
    """One-call convenience: batch-check *documents* against *dtd*."""
    checker = BatchChecker(
        dtd,
        algorithm=algorithm,
        workers=workers,
        config=config,
        admission=admission,
    )
    return checker.check_documents(documents)
