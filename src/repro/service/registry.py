"""An LRU registry of compiled schemas.

:class:`SchemaRegistry` maps :func:`~repro.service.compiled.schema_fingerprint`
content hashes to shared :class:`~repro.service.compiled.CompiledSchema`
artifacts.  The registry is the amortization point of the whole library:
the process-wide :data:`DEFAULT_REGISTRY` backs every
:class:`~repro.core.pv.PVChecker` construction, so a service answering
verdicts for N documents against one schema compiles that schema exactly
once, regardless of how many checkers, sessions, or batch runs it creates.

The cache is a bounded LRU (recently *used*, not recently inserted: a hit
refreshes the entry) guarded by a lock, and it keeps running statistics —
hits, misses, evictions, and cumulative compile seconds — that the batch
CLI and the E10 benchmark report.

A registry may additionally be backed by a persistent
:class:`~repro.service.store.ArtifactStore`: an in-memory miss then tries
the disk before compiling (counted as a ``store_hit``, not a miss), and
every fresh compile is written through, so a restarted process warms up
from disk without recompiling anything.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.dtd.model import DTD
from repro.dtd.parser import parse_dtd
from repro.service.compiled import CompiledSchema, compile_schema, schema_fingerprint

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (store -> compiled)
    from repro.service.store import ArtifactStore

__all__ = [
    "RegistryStats",
    "SchemaRegistry",
    "DEFAULT_REGISTRY",
    "default_registry",
]


@dataclass(frozen=True)
class RegistryStats:
    """An immutable snapshot of one registry's counters."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    compile_seconds: float = 0.0
    size: int = 0
    maxsize: int = 0
    store_hits: int = 0
    store_upgrades: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses + self.store_hits

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served warm — from memory or disk."""
        total = self.lookups
        return (self.hits + self.store_hits) / total if total else 0.0

    @property
    def compiles(self) -> int:
        """Artifacts actually compiled (a miss that the store did not absorb)."""
        return self.misses

    def as_dict(self) -> dict[str, object]:
        """A JSON-ready rendering (the server's ``stats`` op uses this)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "store_hits": self.store_hits,
            "store_upgrades": self.store_upgrades,
            "evictions": self.evictions,
            "compile_seconds": self.compile_seconds,
            "size": self.size,
            "maxsize": self.maxsize,
            "hit_rate": self.hit_rate,
        }

    def merged(self, other: "RegistryStats") -> "RegistryStats":
        """Counter-wise sum of two snapshots (pool-wide aggregation)."""
        return RegistryStats(
            hits=self.hits + other.hits,
            misses=self.misses + other.misses,
            evictions=self.evictions + other.evictions,
            compile_seconds=self.compile_seconds + other.compile_seconds,
            size=self.size + other.size,
            maxsize=self.maxsize + other.maxsize,
            store_hits=self.store_hits + other.store_hits,
            store_upgrades=self.store_upgrades + other.store_upgrades,
        )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        disk = f", {self.store_hits} disk hit(s)" if self.store_hits else ""
        return (
            f"{self.hits} hit(s), {self.misses} miss(es){disk}, "
            f"{self.evictions} eviction(s), "
            f"{self.compile_seconds:.4f}s compiling, "
            f"{self.size}/{self.maxsize} cached"
        )


class SchemaRegistry:
    """A bounded, thread-safe LRU cache of compiled schemas.

    Parameters
    ----------
    maxsize:
        Maximum number of artifacts retained.  The least recently *used*
        artifact is evicted when a newly compiled one would exceed the
        bound.  Must be positive.
    store:
        Optional persistent :class:`~repro.service.store.ArtifactStore`.
        In-memory misses try the store before compiling, and fresh
        compiles are written through to it.
    """

    def __init__(
        self, maxsize: int = 64, store: "ArtifactStore | None" = None
    ) -> None:
        if maxsize <= 0:
            raise ValueError("registry maxsize must be positive")
        self.maxsize = maxsize
        self.store = store
        self._entries: OrderedDict[str, CompiledSchema] = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._store_hits = 0
        self._compile_seconds = 0.0
        # Optional observability mirror: per-event counters in a
        # MetricsRegistry.  None (the default) costs one attribute check
        # per event; see attach_metrics.
        self._event_counters: dict[str, Any] | None = None

    def attach_store(self, store: "ArtifactStore | None") -> None:
        """Attach (or detach, with ``None``) the persistent backing store."""
        self.store = store

    def attach_metrics(self, metrics: Any) -> None:
        """Mirror registry events into *metrics* (a
        :class:`repro.obs.metrics.MetricsRegistry`) as
        ``repro_registry_events_total{event=...}`` counters.  A later
        call rebinds the mirror (last attach wins); ``None`` detaches."""
        if metrics is None:
            self._event_counters = None
            return
        self._event_counters = {
            event: metrics.counter("repro_registry_events_total", event=event)
            for event in ("hit", "miss", "store_hit", "eviction")
        }

    def _count_event(self, event: str, amount: int = 1) -> None:
        if self._event_counters is not None:
            self._event_counters[event].inc(amount)

    # -- lookup / compilation ----------------------------------------------

    def get(self, dtd: DTD) -> CompiledSchema:
        """The compiled artifact for *dtd*, compiling on first sight.

        The cache key is the content hash, so structurally equal DTDs —
        including independently parsed copies — share one artifact.
        """
        fingerprint = schema_fingerprint(dtd)
        with self._lock:
            cached = self._entries.get(fingerprint)
            if cached is not None:
                self._hits += 1
                self._count_event("hit")
                self._entries.move_to_end(fingerprint)
                return cached
        # Disk, then compile, both outside the lock: either can be slow and
        # must not serialize unrelated lookups.  A racing load/compile of
        # the same DTD wastes work but stays correct (first insert wins).
        from_store = self.store.load(fingerprint) if self.store is not None else None
        if from_store is not None:
            return self._insert(fingerprint, from_store, source="store")
        schema = compile_schema(dtd, fingerprint=fingerprint)
        if self.store is not None:
            try:
                self.store.save(schema)
            except OSError:
                pass  # an unwritable store degrades to memory-only caching
        return self._insert(fingerprint, schema, source="compile")

    def _insert(
        self, fingerprint: str, schema: CompiledSchema, source: str
    ) -> CompiledSchema:
        with self._lock:
            existing = self._entries.get(fingerprint)
            if existing is not None:
                if source != "seed":
                    self._hits += 1
                    self._count_event("hit")
                self._entries.move_to_end(fingerprint)
                return existing
            if source == "store":
                self._store_hits += 1
                self._count_event("store_hit")
            elif source == "compile":
                self._misses += 1
                self._count_event("miss")
                self._compile_seconds += schema.compile_seconds
            self._entries[fingerprint] = schema
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
                self._evictions += 1
                self._count_event("eviction")
        return schema

    def put(self, schema: CompiledSchema) -> CompiledSchema:
        """Seed an already-compiled artifact (counts neither hit nor miss).

        Used to hand a worker process the artifact its parent compiled, so
        subsequent lookups in the worker are honest warm hits.  Returns the
        retained artifact (an already-cached equal one wins).
        """
        return self._insert(schema.fingerprint, schema, source="seed")

    def get_text(
        self, text: str, root: str | None = None, name: str = "dtd"
    ) -> CompiledSchema:
        """Parse DTD *text* and return its compiled artifact."""
        return self.get(parse_dtd(text, root=root, name=name))

    def lookup(self, fingerprint: str, count: bool = False) -> CompiledSchema | None:
        """Peek by content hash without compiling (refreshes LRU order).

        With ``count=True`` a *hit* is recorded in the statistics — the
        form serving paths use, where a fingerprint lookup is the
        request's cache access.  A miss is deliberately not counted: the
        caller falls back to :meth:`get`, which classifies the outcome
        accurately (store hit vs compile); counting here too would record
        one request twice.
        """
        with self._lock:
            cached = self._entries.get(fingerprint)
            if cached is not None:
                self._entries.move_to_end(fingerprint)
                if count:
                    self._hits += 1
                    self._count_event("hit")
            return cached

    # -- maintenance --------------------------------------------------------

    def clear(self) -> None:
        """Drop all cached artifacts (statistics are kept)."""
        with self._lock:
            self._entries.clear()

    def reset_stats(self) -> None:
        with self._lock:
            self._hits = self._misses = self._evictions = self._store_hits = 0
            self._compile_seconds = 0.0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, dtd: object) -> bool:
        if not isinstance(dtd, DTD):
            return False
        with self._lock:
            return schema_fingerprint(dtd) in self._entries

    @property
    def stats(self) -> RegistryStats:
        # upgrade_count is a counter read, not the store's full stats
        # snapshot (which walks the artifact directory).
        store = self.store
        upgrades = store.upgrade_count if store is not None else 0
        with self._lock:
            return RegistryStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                compile_seconds=self._compile_seconds,
                size=len(self._entries),
                maxsize=self.maxsize,
                store_hits=self._store_hits,
                store_upgrades=upgrades,
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SchemaRegistry({self.stats})"


#: The process-wide registry behind :class:`~repro.core.pv.PVChecker`.
DEFAULT_REGISTRY = SchemaRegistry()


def default_registry() -> SchemaRegistry:
    """The process-wide default registry (one compile per schema per process)."""
    return DEFAULT_REGISTRY
