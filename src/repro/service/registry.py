"""An LRU registry of compiled schemas.

:class:`SchemaRegistry` maps :func:`~repro.service.compiled.schema_fingerprint`
content hashes to shared :class:`~repro.service.compiled.CompiledSchema`
artifacts.  The registry is the amortization point of the whole library:
the process-wide :data:`DEFAULT_REGISTRY` backs every
:class:`~repro.core.pv.PVChecker` construction, so a service answering
verdicts for N documents against one schema compiles that schema exactly
once, regardless of how many checkers, sessions, or batch runs it creates.

The cache is a bounded LRU (recently *used*, not recently inserted: a hit
refreshes the entry) guarded by a lock, and it keeps running statistics —
hits, misses, evictions, and cumulative compile seconds — that the batch
CLI and the E10 benchmark report.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

from repro.dtd.model import DTD
from repro.dtd.parser import parse_dtd
from repro.service.compiled import CompiledSchema, compile_schema, schema_fingerprint

__all__ = [
    "RegistryStats",
    "SchemaRegistry",
    "DEFAULT_REGISTRY",
    "default_registry",
]


@dataclass(frozen=True)
class RegistryStats:
    """An immutable snapshot of one registry's counters."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    compile_seconds: float = 0.0
    size: int = 0
    maxsize: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when none yet)."""
        total = self.lookups
        return self.hits / total if total else 0.0

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.hits} hit(s), {self.misses} miss(es), "
            f"{self.evictions} eviction(s), "
            f"{self.compile_seconds:.4f}s compiling, "
            f"{self.size}/{self.maxsize} cached"
        )


class SchemaRegistry:
    """A bounded, thread-safe LRU cache of compiled schemas.

    Parameters
    ----------
    maxsize:
        Maximum number of artifacts retained.  The least recently *used*
        artifact is evicted when a newly compiled one would exceed the
        bound.  Must be positive.
    """

    def __init__(self, maxsize: int = 64) -> None:
        if maxsize <= 0:
            raise ValueError("registry maxsize must be positive")
        self.maxsize = maxsize
        self._entries: OrderedDict[str, CompiledSchema] = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._compile_seconds = 0.0

    # -- lookup / compilation ----------------------------------------------

    def get(self, dtd: DTD) -> CompiledSchema:
        """The compiled artifact for *dtd*, compiling on first sight.

        The cache key is the content hash, so structurally equal DTDs —
        including independently parsed copies — share one artifact.
        """
        fingerprint = schema_fingerprint(dtd)
        with self._lock:
            cached = self._entries.get(fingerprint)
            if cached is not None:
                self._hits += 1
                self._entries.move_to_end(fingerprint)
                return cached
        # Compile outside the lock: compilation can be slow and must not
        # serialize unrelated lookups.  A racing compile of the same DTD
        # wastes work but stays correct (first store wins).
        schema = compile_schema(dtd, fingerprint=fingerprint)
        with self._lock:
            existing = self._entries.get(fingerprint)
            if existing is not None:
                self._hits += 1
                self._entries.move_to_end(fingerprint)
                return existing
            self._misses += 1
            self._compile_seconds += schema.compile_seconds
            self._entries[fingerprint] = schema
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
                self._evictions += 1
        return schema

    def get_text(
        self, text: str, root: str | None = None, name: str = "dtd"
    ) -> CompiledSchema:
        """Parse DTD *text* and return its compiled artifact."""
        return self.get(parse_dtd(text, root=root, name=name))

    def lookup(self, fingerprint: str) -> CompiledSchema | None:
        """Peek by content hash without compiling (refreshes LRU order)."""
        with self._lock:
            cached = self._entries.get(fingerprint)
            if cached is not None:
                self._entries.move_to_end(fingerprint)
            return cached

    # -- maintenance --------------------------------------------------------

    def clear(self) -> None:
        """Drop all cached artifacts (statistics are kept)."""
        with self._lock:
            self._entries.clear()

    def reset_stats(self) -> None:
        with self._lock:
            self._hits = self._misses = self._evictions = 0
            self._compile_seconds = 0.0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, dtd: object) -> bool:
        if not isinstance(dtd, DTD):
            return False
        with self._lock:
            return schema_fingerprint(dtd) in self._entries

    @property
    def stats(self) -> RegistryStats:
        with self._lock:
            return RegistryStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                compile_seconds=self._compile_seconds,
                size=len(self._entries),
                maxsize=self.maxsize,
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SchemaRegistry({self.stats})"


#: The process-wide registry behind :class:`~repro.core.pv.PVChecker`.
DEFAULT_REGISTRY = SchemaRegistry()


def default_registry() -> SchemaRegistry:
    """The process-wide default registry (one compile per schema per process)."""
    return DEFAULT_REGISTRY
