"""The one-time schema compilation artifact.

A :class:`CompiledSchema` bundles everything any checking backend derives
from a DTD — the reachability/classification analysis (Definition 5-8),
the Section 4.2 DAG model consumed by the exact :class:`PVMachine` and the
Figure-5 recognizer, the dense integer tables consumed by the kernel
backend, and (lazily, because only the Earley backend needs it) the
per-element content grammar of Section 3.3.  Once built, verdicts never
touch DTD text again; that is the paper's amortization argument made
into an object.

Identity is a **content hash** (:func:`schema_fingerprint`): the SHA-256
of the canonical serialization plus the designated root.  Two DTD sources
that differ only in formatting, comments or entity sugar parse to equal
models, serialize identically, and therefore share one artifact — the
property the registry's cache key relies on.

The artifact is immutable after construction (the lazy Earley members are
memoized, never rebound to different values) and **picklable**, so a
``multiprocessing`` pool can ship it to workers once at startup.  The
lazy members are dropped from the pickle: they are derived data and each
worker rebuilds them on first use only if its backend needs them.
"""

from __future__ import annotations

import hashlib
from time import perf_counter

from repro.core.coarse import CoarseSummary, compile_coarse
from repro.core.dag import DtdDag, build_dag
from repro.core.tables import CompiledTables, compile_tables
from repro.dtd.analysis import DTDAnalysis, DTDClass, analyze
from repro.dtd.model import DTD
from repro.dtd.serialize import dtd_to_text
from repro.grammar.build import build_content_cfg
from repro.grammar.earley import EarleyRecognizer

__all__ = [
    "CompiledSchema",
    "schema_fingerprint",
    "compile_schema",
    "clear_compile_caches",
]


def schema_fingerprint(dtd: DTD) -> str:
    """Content hash identifying *dtd* up to canonical serialization.

    The hash covers the declarations (in order) and the designated root —
    everything potential validity depends on — and deliberately excludes
    the cosmetic ``name``.  Equivalent serializations of the same DTD
    (whitespace, formatting) produce equal models and thus equal hashes.
    """
    canonical = f"root={dtd.root}\n{dtd_to_text(dtd)}"
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class CompiledSchema:
    """Everything derived from one DTD, compiled once.

    Attributes
    ----------
    dtd:
        The source model.
    fingerprint:
        :func:`schema_fingerprint` of the source — the registry cache key.
    analysis:
        Reachability table, productivity, recursion class (Defs 5-8).
    dag:
        ``DAG_T`` with both the flattened and the exact position tables.
    tables:
        The kernel backend's dense integer tables
        (:class:`~repro.core.tables.CompiledTables`).  Built eagerly by
        :func:`compile_schema` and carried inside the pickle (artifact
        format version 2); artifacts unpickled from the version-1 layout
        rebuild them lazily on first kernel use.
    coarse:
        The admission summary (:class:`~repro.core.coarse.CoarseSummary`)
        the coarse-to-fine pipeline pre-filters with.  Built eagerly by
        :func:`compile_schema` and carried inside the pickle (artifact
        format version 3); older artifacts rebuild it lazily on first
        admission use.
    compile_seconds:
        Wall time the compilation took (feeds registry statistics and the
        E10 benchmark's amortization table).
    """

    __slots__ = (
        "dtd",
        "fingerprint",
        "analysis",
        "dag",
        "compile_seconds",
        "_tables",
        "_coarse",
        "_content_cfg",
        "_earley",
    )

    def __init__(
        self,
        dtd: DTD,
        fingerprint: str,
        analysis: DTDAnalysis,
        dag: DtdDag,
        compile_seconds: float = 0.0,
        tables: CompiledTables | None = None,
        coarse: CoarseSummary | None = None,
    ) -> None:
        self.dtd = dtd
        self.fingerprint = fingerprint
        self.analysis = analysis
        self.dag = dag
        self.compile_seconds = compile_seconds
        self._tables = tables
        self._coarse = coarse
        self._content_cfg = None
        self._earley: EarleyRecognizer | None = None

    # -- derived members ---------------------------------------------------

    @property
    def is_pv_strong(self) -> bool:
        return self.analysis.dtd_class is DTDClass.PV_STRONG_RECURSIVE

    def content_cfg(self):
        """The Section 3.3 per-element content grammar (built on demand)."""
        if self._content_cfg is None:
            self._content_cfg = build_content_cfg(self.dtd)
        return self._content_cfg

    def earley(self) -> EarleyRecognizer:
        """A shared Earley recognizer over :meth:`content_cfg`."""
        if self._earley is None:
            self._earley = EarleyRecognizer(self.content_cfg())
        return self._earley

    @property
    def tables(self) -> CompiledTables:
        """The kernel backend's dense tables (rebuilt if the pickle lacked
        them — i.e. the artifact predates format version 2)."""
        if self._tables is None:
            self._tables = compile_tables(self.dag)
        return self._tables

    @property
    def has_tables(self) -> bool:
        """Whether the tables are already present (no rebuild needed)."""
        return self._tables is not None

    @property
    def coarse(self) -> CoarseSummary:
        """The admission summary (rebuilt if the pickle lacked it — i.e.
        the artifact predates format version 3)."""
        if self._coarse is None:
            self._coarse = compile_coarse(self.dag)
        return self._coarse

    @property
    def has_coarse(self) -> bool:
        """Whether the admission summary is present (no rebuild needed)."""
        return self._coarse is not None

    def checker(self, algorithm: str = "machine", config=None):
        """A :class:`~repro.core.pv.PVChecker` backed by this artifact."""
        from repro.config import DEFAULT_CONFIG
        from repro.core.pv import PVChecker

        return PVChecker(
            self.dtd,
            config=DEFAULT_CONFIG if config is None else config,
            algorithm=algorithm,  # type: ignore[arg-type]
            compiled=self,
        )

    # -- pickling ----------------------------------------------------------

    def __getstate__(self):
        return {
            "dtd": self.dtd,
            "fingerprint": self.fingerprint,
            "analysis": self.analysis,
            "dag": self.dag,
            "compile_seconds": self.compile_seconds,
            "tables": self._tables,
            "coarse": self._coarse,
        }

    def __setstate__(self, state) -> None:
        self.dtd = state["dtd"]
        self.fingerprint = state["fingerprint"]
        self.analysis = state["analysis"]
        self.dag = state["dag"]
        self.compile_seconds = state["compile_seconds"]
        # Version-1 artifacts predate the kernel tables and version-1/-2
        # artifacts predate the admission summary; absent means "rebuild
        # lazily", so old pickles keep loading.
        self._tables = state.get("tables")
        self._coarse = state.get("coarse")
        self._content_cfg = None
        self._earley = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CompiledSchema({self.dtd.name!r}, root={self.dtd.root!r}, "
            f"fingerprint={self.fingerprint[:12]}...)"
        )


def compile_schema(dtd: DTD, fingerprint: str | None = None) -> CompiledSchema:
    """Compile *dtd* into a fresh :class:`CompiledSchema`.

    Builds ``DAG_T`` directly (no memoization) so the reported
    ``compile_seconds`` is the honest one-time cost; callers wanting
    sharing go through :class:`~repro.service.registry.SchemaRegistry`,
    which *is* the cache.
    """
    started = perf_counter()
    dag = DtdDag(dtd)
    tables = compile_tables(dag)
    coarse = compile_coarse(dag)
    elapsed = perf_counter() - started
    return CompiledSchema(
        dtd=dtd,
        fingerprint=fingerprint or schema_fingerprint(dtd),
        analysis=dag.analysis,
        dag=dag,
        compile_seconds=elapsed,
        tables=tables,
        coarse=coarse,
    )


def clear_compile_caches() -> None:
    """Drop every process-wide memoized compilation product.

    Clears the ``analyze``/``build_dag`` LRU caches (and nothing else).
    Used by cold-start benchmarks so a "cold" arm really recompiles, and
    by long-lived services that want to bound memory after schema churn.
    """
    analyze.cache_clear()
    build_dag.cache_clear()
