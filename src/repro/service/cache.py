"""The verdict memo cache: repeat documents answered in O(1).

Validation traffic repeats itself — editors re-check on every keystroke,
pipelines re-submit the same artifacts, ring clients retry.  A verdict is
a pure function of ``(schema, document bytes, checking policy)``, so a
bounded LRU over that key serves repeats without parsing a byte.

:class:`VerdictCache` is that LRU.  Keys are
``(schema_fingerprint, blake2b(doc_bytes), mode)`` — the fingerprint pins
the schema revision (a recompiled schema can never serve stale verdicts),
the 16-byte blake2b digest stands in for the document text, and ``mode``
names the checking policy (a backend token, or ``auto:<admission>`` on
the dispatcher path) so differently-configured surfaces never alias.
Values are whatever verdict object the caller serves (:class:`PVVerdict`,
``DispatchedVerdict`` — the cache never inspects them).

One instance is shared across threads (``ValidationServer`` consults it
from every connection); a single lock guards the ordered dict, and the
hit/miss/eviction counters feed ``repro_verdict_cache_total``.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from typing import Any, Hashable

__all__ = ["VerdictCache"]


class VerdictCache:
    """A thread-safe bounded LRU for verdicts keyed by content digest."""

    __slots__ = ("maxsize", "_entries", "_lock", "hits", "misses", "evictions")

    def __init__(self, maxsize: int) -> None:
        if maxsize < 1:
            raise ValueError(f"cache size must be positive, got {maxsize}")
        self.maxsize = maxsize
        self._entries: OrderedDict[Hashable, Any] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @staticmethod
    def digest(text: str) -> bytes:
        """The 16-byte blake2b digest standing in for *text*."""
        return hashlib.blake2b(text.encode("utf-8"), digest_size=16).digest()

    @classmethod
    def key(cls, fingerprint: str, text: str, mode: str) -> Hashable:
        """The cache key for *text* checked under *fingerprint*/*mode*."""
        return (fingerprint, cls.digest(text), mode)

    def get(self, key: Hashable) -> Any | None:
        """The cached verdict, freshened to most-recent, or ``None``."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry

    def put(self, key: Hashable, value: Any) -> bool:
        """Store *value*; returns True when an older entry was evicted."""
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            if len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
                self.evictions += 1
                return True
            return False

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def stats(self) -> dict[str, int]:
        """Counters for the ``stats`` op and the metrics bridge."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "size": len(self._entries),
                "maxsize": self.maxsize,
            }
