"""A persistent on-disk cache of compiled schema artifacts.

:class:`ArtifactStore` is the durability tier below
:class:`~repro.service.registry.SchemaRegistry`: one pickle file per
schema fingerprint, so a restarted process (the ``repro serve`` server in
particular) reloads compiled artifacts instead of recompiling them.  The
registry consults the store on every in-memory miss and writes through on
every compile, which makes the disk the second level of a two-level
cache — memory hit, then disk hit, then compile.

File format
-----------
Each artifact lives at ``<directory>/<fingerprint>.pkl`` as a one-line
versioned ASCII header followed by the pickle payload::

    repro-pv-artifact <format-version>\\n
    <pickle bytes of the CompiledSchema>

The header makes files self-describing: a load rejects a wrong magic, a
future format version, or a payload whose embedded fingerprint does not
match the file name (a renamed or tampered file).

Format versions
---------------
* **1** — original layout: pickled ``CompiledSchema`` without kernel
  tables.
* **2** — the pickle carries the kernel backend's dense integer tables
  (:mod:`repro.core.tables`).
* **3** (current) — the pickle additionally carries the coarse admission
  summary (:mod:`repro.core.coarse`), so a shipped or reloaded artifact
  serves admission verdicts with zero rebuild.

A *supported older* version (see :data:`SUPPORTED_FORMAT_VERSIONS`) is a
legitimate artifact, not corruption: the load succeeds, the missing
derived data is rebuilt, and the file is rewritten in place at the
current version — counted in :attr:`StoreStats.upgrades` and logged once
per store.  Only a *future* or unknown version is treated as a miss.

Durability rules
----------------
* **Atomic write** — :meth:`ArtifactStore.save` writes to a temp file in
  the store directory and ``os.replace``\\ s it into place, so readers
  never observe a half-written artifact, even across concurrent servers
  sharing one store directory.
* **Corruption-tolerant load** — a truncated, garbled, or wrong-version
  file is treated as a miss (the artifact is recompiled and rewritten),
  never as an error.  The corrupt file is unlinked best-effort so the
  next write-through replaces it.
"""

from __future__ import annotations

import logging
import os
import pickle
import tempfile
import threading
from dataclasses import dataclass
from pathlib import Path

from repro.service.compiled import CompiledSchema

__all__ = [
    "STORE_MAGIC",
    "STORE_FORMAT_VERSION",
    "SUPPORTED_FORMAT_VERSIONS",
    "StoreStats",
    "ArtifactStore",
    "default_store_dir",
    "encode_artifact",
    "decode_artifact",
    "artifact_format_version",
]

logger = logging.getLogger(__name__)

#: First header token of every artifact file.
STORE_MAGIC = "repro-pv-artifact"

#: The version new artifacts are written at.  Bump when the layout grows.
STORE_FORMAT_VERSION = 3

#: Versions a load accepts.  Older-but-supported files decode fine (any
#: missing derived data rebuilds lazily) and are upgraded in place by the
#: store; anything else is treated as a miss.
SUPPORTED_FORMAT_VERSIONS = (1, 2, 3)

_SUFFIX = ".pkl"


def encode_artifact(schema: CompiledSchema) -> bytes:
    """*schema* in the store's self-describing byte format (header + pickle).

    This is both the on-disk file format and the wire transfer format the
    ring's ``put-artifact``/``get-artifact`` ops ship between shards — one
    encoding, verified the same way on every receiving side.
    """
    header = f"{STORE_MAGIC} {STORE_FORMAT_VERSION}\n".encode("ascii")
    return header + pickle.dumps(schema, protocol=pickle.HIGHEST_PROTOCOL)


def artifact_format_version(blob: bytes) -> int | None:
    """The header's format version, or ``None`` for a malformed header.

    Purely syntactic: a well-formed header with an *unsupported* version
    still reports its number, so callers can distinguish "older supported
    layout" (upgradeable) from garbage.
    """
    newline = blob.find(b"\n")
    if newline < 0:
        return None
    try:
        magic, version_text = blob[:newline].decode("ascii").split(" ")
    except (UnicodeDecodeError, ValueError):
        return None
    if magic != STORE_MAGIC or not version_text.isdigit():
        return None
    return int(version_text)


def decode_artifact(blob: bytes, fingerprint: str) -> CompiledSchema | None:
    """Decode :func:`encode_artifact` bytes, or ``None`` on any defect.

    Every defect — missing or bad header, unsupported format version,
    truncated or garbled pickle, an embedded fingerprint that does not
    match the expected one — yields ``None``, never an exception: the disk
    store treats it as a cache miss and the server's ``put-artifact`` op
    turns it into a structured ``bad-artifact`` error.  Supported *older*
    versions decode normally (lazy members absent from the old layout are
    rebuilt on demand).
    """
    newline = blob.find(b"\n")
    version = artifact_format_version(blob)
    if version is None or version not in SUPPORTED_FORMAT_VERSIONS:
        return None
    try:
        schema = pickle.loads(blob[newline + 1 :])
    except Exception:
        # A truncated or garbled payload can raise nearly anything out
        # of the unpickler (EOFError, UnpicklingError, AttributeError,
        # ValueError, ...); every such defect is just a bad blob.
        return None
    if not isinstance(schema, CompiledSchema) or schema.fingerprint != fingerprint:
        return None
    return schema


def default_store_dir() -> Path:
    """The store directory used when the CLI is not given ``--store``.

    ``$REPRO_CACHE_DIR`` wins when set; otherwise a per-user cache
    location (``$XDG_CACHE_HOME`` or ``~/.cache``) under ``repro-pv``.
    """
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro-pv" / "artifacts"


@dataclass(frozen=True)
class StoreStats:
    """An immutable snapshot of one store's counters and contents."""

    directory: str
    artifacts: int
    total_bytes: int
    hits: int = 0
    misses: int = 0
    corrupt: int = 0
    saves: int = 0
    upgrades: int = 0

    def as_dict(self) -> dict[str, object]:
        """A JSON-ready rendering (the server's ``stats`` op uses this)."""
        return {
            "directory": self.directory,
            "artifacts": self.artifacts,
            "total_bytes": self.total_bytes,
            "hits": self.hits,
            "misses": self.misses,
            "corrupt": self.corrupt,
            "saves": self.saves,
            "upgrades": self.upgrades,
        }

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.artifacts} artifact(s), {self.total_bytes} byte(s) in "
            f"{self.directory} — {self.hits} hit(s), {self.misses} miss(es), "
            f"{self.corrupt} corrupt, {self.saves} save(s), "
            f"{self.upgrades} upgrade(s)"
        )


class ArtifactStore:
    """Pickle-file persistence for :class:`CompiledSchema` artifacts.

    Parameters
    ----------
    directory:
        Where artifact files live.  Created on first use (not at
        construction, so pointing at a read-only location only fails when
        a save is actually attempted).
    """

    def __init__(self, directory: str | os.PathLike[str]) -> None:
        self.directory = Path(directory)
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._corrupt = 0
        self._saves = 0
        self._upgrades = 0
        self._upgrade_logged = False
        # Optional observability mirrors; None (the default) costs one
        # attribute check per event.  See attach_observability.
        self._event_counters = None
        self._events = None

    def attach_observability(self, metrics=None, events=None) -> None:
        """Mirror store events into a
        :class:`repro.obs.metrics.MetricsRegistry` (as
        ``repro_store_events_total{event=...}`` counters) and/or emit
        ``store-upgrade`` events to a :class:`repro.obs.events.EventLog`.
        A later call rebinds each sink independently (last attach wins);
        passing ``None`` for a sink detaches it."""
        if metrics is None:
            self._event_counters = None
        else:
            self._event_counters = {
                event: metrics.counter("repro_store_events_total", event=event)
                for event in ("hit", "miss", "corrupt", "save", "upgrade")
            }
        self._events = events if events is not None and events.enabled else None

    def _count_event(self, event: str) -> None:
        if self._event_counters is not None:
            self._event_counters[event].inc()

    # -- paths --------------------------------------------------------------

    def path_for(self, fingerprint: str) -> Path:
        return self.directory / f"{fingerprint}{_SUFFIX}"

    def fingerprints(self) -> list[str]:
        """Fingerprints with an artifact file present (sorted)."""
        try:
            names = [
                entry.stem
                for entry in self.directory.iterdir()
                # Hidden names are in-flight ``.tmp-*`` files from save();
                # counting them would report phantom artifacts.
                if entry.suffix == _SUFFIX and not entry.name.startswith(".")
            ]
        except OSError:
            return []
        return sorted(names)

    def __contains__(self, fingerprint: object) -> bool:
        return isinstance(fingerprint, str) and self.path_for(fingerprint).exists()

    def __len__(self) -> int:
        return len(self.fingerprints())

    # -- load / save --------------------------------------------------------

    def load(self, fingerprint: str) -> CompiledSchema | None:
        """The stored artifact for *fingerprint*, or ``None``.

        Any defect — missing file, bad magic, unsupported format version,
        truncated or garbled pickle, fingerprint mismatch — is a miss;
        corrupt files are additionally counted and unlinked best-effort so
        the next write-through replaces them cleanly.  A file at a
        *supported older* format version is a hit: it is decoded, upgraded
        in place to the current version, and counted separately.
        """
        path = self.path_for(fingerprint)
        try:
            blob = path.read_bytes()
        except OSError:
            with self._lock:
                self._misses += 1
            self._count_event("miss")
            return None
        schema = self._decode(blob, fingerprint)
        if schema is None:
            with self._lock:
                self._corrupt += 1
                self._misses += 1
            self._count_event("corrupt")
            self._count_event("miss")
            try:
                path.unlink()
            except OSError:
                pass
            return None
        version = artifact_format_version(blob)
        if version is not None and version < STORE_FORMAT_VERSION:
            self._upgrade_in_place(schema, version)
        with self._lock:
            self._hits += 1
        self._count_event("hit")
        return schema

    def _upgrade_in_place(self, schema: CompiledSchema, version: int) -> None:
        """Rewrite an older-format artifact at the current version.

        The derived data the old layout lacked is built eagerly so the
        rewritten file is a full current-version artifact; a store that
        cannot be written (read-only mount) still serves the upgraded
        object, it just retries the rewrite on the next load.
        """
        if not schema.has_tables:
            schema.tables  # noqa: B018 - builds the v2 payload
        if not schema.has_coarse:
            schema.coarse  # noqa: B018 - builds the v3 payload
        try:
            self.save(schema)
        except OSError:
            pass
        with self._lock:
            self._upgrades += 1
            already_logged = self._upgrade_logged
            self._upgrade_logged = True
        self._count_event("upgrade")
        if self._events is not None:
            self._events.emit(
                "store-upgrade",
                fingerprint=schema.fingerprint,
                from_version=version,
                to_version=STORE_FORMAT_VERSION,
                directory=str(self.directory),
            )
        if not already_logged:
            logger.info(
                "upgraded artifact %s from format version %d to %d in %s "
                "(further upgrades in this store are counted silently)",
                schema.fingerprint[:12],
                version,
                STORE_FORMAT_VERSION,
                self.directory,
            )

    def save(self, schema: CompiledSchema) -> Path:
        """Atomically persist *schema*, returning the artifact path."""
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self.path_for(schema.fingerprint)
        blob = encode_artifact(schema)
        fd, temp_name = tempfile.mkstemp(
            dir=self.directory, prefix=".tmp-", suffix=_SUFFIX
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(blob)
            os.replace(temp_name, path)
        except BaseException:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise
        with self._lock:
            self._saves += 1
        self._count_event("save")
        return path

    def _decode(self, blob: bytes, fingerprint: str) -> CompiledSchema | None:
        return decode_artifact(blob, fingerprint)

    # -- maintenance --------------------------------------------------------

    def clear(self) -> int:
        """Delete every artifact file; returns how many were removed.

        Orphaned ``.tmp-*`` files (a saver killed mid-write) are swept
        too, but are not counted as removed artifacts.
        """
        removed = 0
        for fingerprint in self.fingerprints():
            try:
                self.path_for(fingerprint).unlink()
                removed += 1
            except OSError:
                pass
        try:
            leftovers = [
                entry
                for entry in self.directory.iterdir()
                if entry.name.startswith(".tmp-")
            ]
        except OSError:
            leftovers = []
        for entry in leftovers:
            try:
                entry.unlink()
            except OSError:
                pass
        return removed

    @property
    def stats(self) -> StoreStats:
        artifacts = 0
        total_bytes = 0
        for fingerprint in self.fingerprints():
            try:
                total_bytes += self.path_for(fingerprint).stat().st_size
                artifacts += 1
            except OSError:
                pass
        with self._lock:
            return StoreStats(
                directory=str(self.directory),
                artifacts=artifacts,
                total_bytes=total_bytes,
                hits=self._hits,
                misses=self._misses,
                corrupt=self._corrupt,
                saves=self._saves,
                upgrades=self._upgrades,
            )

    @property
    def upgrade_count(self) -> int:
        """Format-version upgrades performed, without the directory walk
        :attr:`stats` does (registry snapshots poll this per call)."""
        with self._lock:
            return self._upgrades

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ArtifactStore({str(self.directory)!r})"
