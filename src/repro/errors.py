"""Exception hierarchy for the ``repro`` library.

Every error raised by the library derives from :class:`ReproError`, so that
callers embedding the checker into an editor loop can catch one type.  The
subtypes mirror the major subsystems: DTD handling, XML parsing, grammar
construction, and potential-validity checking itself.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class DTDError(ReproError):
    """Base class for DTD-related errors."""


class DTDSyntaxError(DTDError):
    """The DTD text could not be tokenized or parsed.

    Attributes
    ----------
    message:
        Human readable description of the problem.
    position:
        Character offset into the DTD source at which the problem was
        detected, or ``None`` when not applicable.
    """

    def __init__(self, message: str, position: int | None = None) -> None:
        self.message = message
        self.position = position
        suffix = f" (at offset {position})" if position is not None else ""
        super().__init__(message + suffix)


class DTDSemanticError(DTDError):
    """The DTD parsed but is not a legal DTD.

    Examples: duplicate element declarations, ``#PCDATA`` used outside a
    mixed-content model, references to the reserved names.
    """


class UnknownElementError(DTDError):
    """An operation referenced an element type not declared in the DTD."""

    def __init__(self, name: str) -> None:
        self.name = name
        super().__init__(f"element type {name!r} is not declared in the DTD")


class UnusableElementError(DTDError):
    """An element type can never occur in any finite valid document.

    The paper (Section 3.3) assumes all element types are *usable*; this
    error is raised by APIs that enforce that assumption.  Callers that want
    graceful handling of unusable elements should use the exact checkers,
    which guard skip/descend/acceptance on productivity instead of raising.
    """

    def __init__(self, names: tuple[str, ...]) -> None:
        self.names = names
        listed = ", ".join(sorted(names))
        super().__init__(f"unusable element type(s) in DTD: {listed}")


class XmlError(ReproError):
    """Base class for XML-document errors."""


class XmlSyntaxError(XmlError):
    """The XML text is not well formed.

    Attributes
    ----------
    message:
        Human readable description.
    line / column:
        1-based position of the offending token, when known.
    """

    def __init__(
        self,
        message: str,
        line: int | None = None,
        column: int | None = None,
    ) -> None:
        self.message = message
        self.line = line
        self.column = column
        if line is not None:
            suffix = f" (line {line}, column {column})"
        else:
            suffix = ""
        super().__init__(message + suffix)


class XmlStructureError(XmlError):
    """A tree-manipulation request was structurally impossible.

    Examples: wrapping a non-contiguous range of children, deleting the
    document root's tag, addressing a child index out of range.
    """


class GrammarError(ReproError):
    """A context-free grammar was malformed or used inconsistently."""


class PVError(ReproError):
    """Base class for potential-validity checking errors."""


class DepthBoundExceeded(PVError):
    """The recognizer hit its document-depth bound before reaching a verdict.

    Only PV-strong recursive DTDs can require unbounded insertion depth
    (paper Section 4.3.1); for those the verdict is relative to the bound.
    This error is raised only by APIs configured in *strict* mode where an
    inconclusive bounded verdict must not be silently reported as "no".
    """

    def __init__(self, depth: int) -> None:
        self.depth = depth
        super().__init__(
            f"depth bound {depth} exceeded; verdict would be relative to the bound"
        )


class EditRejected(ReproError):
    """An editor operation was rejected because it would break potential validity.

    Attributes
    ----------
    reason:
        Human-readable explanation of which check failed.
    """

    def __init__(self, reason: str) -> None:
        self.reason = reason
        super().__init__(reason)
