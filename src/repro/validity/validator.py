"""A standard DTD validator: decides membership in ``D(T, r)``.

Potential validity is defined *relative to* plain validity (Definition 3:
some extension lies in ``D(T, r)``), so the reproduction needs a trustworthy
validator: it grounds the naive baseline, verifies completions, and anchors
the Theorem 1 property tests.

Element content is checked with a set-simulation of the Glushkov automaton
of each element's **original** content model (``?``/``+`` intact — the
Corollary 3.1 normal form applies to potential validity only).  DTDs are
required by XML to have deterministic content models, but the set
simulation is exact for nondeterministic ones too, so we do not rely on
that property.

Character data placement follows XML validity:

* ``EMPTY`` — no content at all (not even whitespace),
* *children* — character data is forbidden, except whitespace-only runs,
  which the spec treats as ignorable markup spacing,
* *mixed* / ``ANY`` — character data is always legal.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.dtd.model import (
    AnyContent,
    ChildrenContent,
    DTD,
    EmptyContent,
    MixedContent,
)
from repro.grammar.glushkov import GlushkovAutomaton, build_glushkov
from repro.xmlmodel.tree import XmlDocument, XmlElement, XmlText

__all__ = ["ValidationIssue", "ValidationReport", "DTDValidator"]


@dataclass(frozen=True)
class ValidationIssue:
    """One validity violation, with the offending node's path."""

    path: str
    element: str
    message: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.path}: {self.message}"


@dataclass(frozen=True)
class ValidationReport:
    """The outcome of validating one document."""

    valid: bool
    issues: tuple[ValidationIssue, ...] = ()

    def __bool__(self) -> bool:
        return self.valid


@lru_cache(maxsize=128)
def _automata(dtd: DTD) -> dict[str, GlushkovAutomaton | None]:
    """Glushkov automaton of each element's original content model."""
    automata: dict[str, GlushkovAutomaton | None] = {}
    for decl in dtd:
        regex = decl.content.regex(dtd)
        automata[decl.name] = None if regex is None else build_glushkov(regex)
    return automata


class DTDValidator:
    """Validates documents against a DTD (root element included)."""

    def __init__(self, dtd: DTD) -> None:
        self.dtd = dtd
        self._automata = _automata(dtd)

    # -- public API ---------------------------------------------------------

    def validate(self, document: XmlDocument | XmlElement) -> ValidationReport:
        """Validate the whole document, collecting every issue."""
        root = document.root if isinstance(document, XmlDocument) else document
        issues: list[ValidationIssue] = []
        if root.name != self.dtd.root:
            issues.append(
                ValidationIssue(
                    path="/",
                    element=root.name,
                    message=(
                        f"root element is <{root.name}>, expected "
                        f"<{self.dtd.root}>"
                    ),
                )
            )
        self._check(root, f"/{root.name}", issues)
        return ValidationReport(valid=not issues, issues=tuple(issues))

    def is_valid(self, document: XmlDocument | XmlElement) -> bool:
        return self.validate(document).valid

    def validate_element_content(self, node: XmlElement) -> list[str]:
        """Check one node's content in isolation; returns human messages."""
        issues: list[ValidationIssue] = []
        self._check_content(node, f"/{node.name}", issues)
        return [issue.message for issue in issues]

    # -- internals ----------------------------------------------------------------

    def _check(
        self, node: XmlElement, path: str, issues: list[ValidationIssue]
    ) -> None:
        if node.name not in self.dtd:
            issues.append(
                ValidationIssue(
                    path=path,
                    element=node.name,
                    message=f"element type <{node.name}> is not declared",
                )
            )
            return
        self._check_content(node, path, issues)
        for index, child in enumerate(node.element_children()):
            self._check(child, f"{path}/{child.name}[{index}]", issues)

    def _check_content(
        self, node: XmlElement, path: str, issues: list[ValidationIssue]
    ) -> None:
        content = self.dtd[node.name].content
        if isinstance(content, EmptyContent):
            if node.children:
                issues.append(
                    ValidationIssue(
                        path,
                        node.name,
                        f"<{node.name}> is declared EMPTY but has content",
                    )
                )
            return
        if isinstance(content, (AnyContent, MixedContent)):
            allowed = (
                frozenset(self.dtd.element_names())
                if isinstance(content, AnyContent)
                else frozenset(content.names)
            )
            for child in node.element_children():
                if child.name not in allowed:
                    issues.append(
                        ValidationIssue(
                            path,
                            node.name,
                            f"<{child.name}> is not permitted inside "
                            f"<{node.name}>",
                        )
                    )
            return
        assert isinstance(content, ChildrenContent)
        for child in node.children:
            if isinstance(child, XmlText) and child.text.strip():
                issues.append(
                    ValidationIssue(
                        path,
                        node.name,
                        f"character data is not permitted inside <{node.name}> "
                        "(element content)",
                    )
                )
                break
        labels = [child.name for child in node.element_children()]
        if not self._matches(self._automata[node.name], labels):
            issues.append(
                ValidationIssue(
                    path,
                    node.name,
                    f"children of <{node.name}> "
                    f"({' '.join(labels) if labels else 'none'}) do not match "
                    "its content model",
                )
            )

    @staticmethod
    def _matches(automaton: GlushkovAutomaton | None, labels: list[str]) -> bool:
        assert automaton is not None
        if not labels:
            return automaton.nullable
        states = {
            index
            for index in automaton.first
            if automaton.position(index).matches_directly(labels[0])
        }
        for label in labels[1:]:
            if not states:
                return False
            next_states: set[int] = set()
            for state in states:
                for successor in automaton.follow[state]:
                    if automaton.position(successor).matches_directly(label):
                        next_states.add(successor)
            states = next_states
        return bool(states & automaton.last)
