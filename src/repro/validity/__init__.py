"""Standard DTD validation (the paper's ``D(T, r)`` membership test)."""

from repro.validity.validator import DTDValidator, ValidationIssue, ValidationReport

__all__ = ["DTDValidator", "ValidationIssue", "ValidationReport"]
