"""The guarded editing session.

:class:`EditingSession` enforces the paper's editorial invariant: *after
every accepted operation the document is potentially valid*.  Operations are
vetted by the incremental checks of Sections 3.2/4.1 — O(1) for character
data, two local ECPV runs for markup insertion, and no check at all for
deletions (Theorem 2 closure) — so the per-keystroke cost is independent of
document size except for the wrapped node itself.

A rejected operation leaves the document untouched and either raises
:class:`~repro.errors.EditRejected` (``strict=True``) or is recorded in the
session statistics (``strict=False``); both paths are exercised by the
editor-session benchmark (E8).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config import CheckerConfig, DEFAULT_CONFIG
from repro.core.incremental import IncrementalChecker
from repro.dtd.model import DTD
from repro.editor.document import apply_operation, invert, resolve_element
from repro.editor.operations import (
    DeleteMarkup,
    DeleteText,
    EditOperation,
    InsertMarkup,
    InsertText,
    UpdateText,
)
from repro.errors import EditRejected
from repro.xmlmodel.tree import XmlDocument, XmlElement

__all__ = ["SessionStats", "EditingSession"]


@dataclass
class SessionStats:
    """Counters the E8 benchmark reports."""

    applied: int = 0
    rejected: int = 0
    by_kind: dict[str, int] = field(default_factory=dict)

    def record(self, operation: EditOperation, accepted: bool) -> None:
        kind = type(operation).__name__
        self.by_kind[kind] = self.by_kind.get(kind, 0) + 1
        if accepted:
            self.applied += 1
        else:
            self.rejected += 1


class EditingSession:
    """An editing session over one document, guarded by potential validity.

    Parameters
    ----------
    dtd / document:
        The schema and the document being marked up.  The initial document
        must itself be potentially valid (checked at construction).
    strict:
        When ``True`` rejected operations raise
        :class:`~repro.errors.EditRejected`; when ``False`` they return
        ``False`` and are only counted.
    compiled:
        Optional pre-fetched :class:`~repro.service.compiled.CompiledSchema`
        for *dtd*.  Multi-session services (one session per connected
        editor over a shared schema) pass the registry artifact here so
        opening a session never recompiles; without it the session
        resolves the DTD through the default registry, which amortizes
        just as well after the first session.
    """

    def __init__(
        self,
        dtd: DTD,
        document: XmlDocument,
        config: CheckerConfig = DEFAULT_CONFIG,
        strict: bool = True,
        *,
        compiled=None,
    ) -> None:
        self.dtd = dtd
        self.document = document
        self.strict = strict
        self.checker = IncrementalChecker(dtd, config=config, compiled=compiled)
        self.stats = SessionStats()
        self._undo: list[EditOperation] = []
        verdict = self.checker.checker.check_document(document)
        if not verdict:
            reasons = "; ".join(str(failure) for failure in verdict.failures)
            raise EditRejected(
                f"initial document is not potentially valid: {reasons}"
            )

    # -- the guarded entry point ------------------------------------------------

    def apply(self, operation: EditOperation) -> bool:
        """Check and apply *operation*; returns whether it was accepted."""
        ok, reason = self._admissible(operation)
        self.stats.record(operation, ok)
        if not ok:
            if self.strict:
                raise EditRejected(reason)
            return False
        self._undo.append(invert(self.document, operation))
        apply_operation(self.document, operation)
        return True

    def undo(self) -> bool:
        """Undo the most recent accepted operation (returns False when empty).

        Undo operations are applied unchecked: every inverse of an accepted
        operation restores a previously potentially valid state.
        """
        if not self._undo:
            return False
        apply_operation(self.document, self._undo.pop())
        return True

    @property
    def undo_depth(self) -> int:
        return len(self._undo)

    # -- the per-operation admissibility rules -----------------------------------

    def _admissible(self, operation: EditOperation) -> tuple[bool, str]:
        if isinstance(operation, InsertMarkup):
            parent = resolve_element(self.document, operation.parent)
            if not (0 <= operation.start <= operation.end <= len(parent.children)):
                return False, "wrap range out of bounds"
            if self.checker.check_markup_insert(
                parent, operation.start, operation.end, operation.name
            ):
                return True, ""
            return (
                False,
                f"wrapping children [{operation.start}:{operation.end}) of "
                f"<{parent.name}> in <{operation.name}> would break potential "
                "validity",
            )
        if isinstance(operation, DeleteMarkup):
            if not operation.target:
                return False, "cannot delete the root element's markup"
            # Theorem 2: markup deletion preserves potential validity.
            return True, ""
        if isinstance(operation, InsertText):
            parent = resolve_element(self.document, operation.parent)
            if not 0 <= operation.index <= len(parent.children):
                return False, "text index out of bounds"
            if not operation.text:
                return True, ""  # inserting nothing is a no-op
            if self.checker.check_text_insert(parent, operation.index):
                return True, ""
            return (
                False,
                f"character data is not insertable at index {operation.index} "
                f"of <{parent.name}>",
            )
        if isinstance(operation, (UpdateText, DeleteText)):
            # Theorem 2: character-data updates and deletions are PV-safe.
            return True, ""
        return False, f"unknown operation {operation!r}"  # pragma: no cover

    # -- conveniences -------------------------------------------------------------

    def root(self) -> XmlElement:
        return self.document.root

    def is_potentially_valid(self) -> bool:
        """Full re-check (for tests; sessions maintain this as an invariant)."""
        return self.checker.checker.is_potentially_valid(self.document)
