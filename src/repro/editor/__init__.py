"""A guarded document-centric editing session (the paper's xTagger use case).

The paper's motivation (Section 1, ref [10]) is an editor in which a human
incrementally marks up pre-existing text and the system guarantees, after
every operation, that the document can still be completed into a valid one.
This package provides that substrate:

* :mod:`repro.editor.operations` — the operation vocabulary (markup
  insert/delete, text insert/update/delete) with tree addresses,
* :mod:`repro.editor.document` — address resolution and operation
  application over the DOM,
* :mod:`repro.editor.session` — the guarded session: every operation is
  checked with the incremental checker (Sections 3.2/4.1) before being
  applied, rejected operations raise or are recorded, and undo is
  supported.
"""

from repro.editor.operations import (
    DeleteMarkup,
    DeleteText,
    EditOperation,
    InsertMarkup,
    InsertText,
    UpdateText,
)
from repro.editor.session import EditingSession, SessionStats

__all__ = [
    "EditOperation",
    "InsertMarkup",
    "DeleteMarkup",
    "InsertText",
    "UpdateText",
    "DeleteText",
    "EditingSession",
    "SessionStats",
]
