"""Editing operations over a document tree.

Nodes are addressed by *paths*: tuples of child indices from the root
element (the empty tuple addresses the root itself).  Paths index the full
children list — text nodes included — because document-centric editing is
precisely about positioning markup relative to character data.

The vocabulary matches the paper's update taxonomy (Section 3.2):

* :class:`InsertMarkup` — wrap a contiguous child range in a new element
  (Definition 2's extension step; the only operation that can *create*
  invalidity beyond repair, hence the two-ECPV check),
* :class:`DeleteMarkup` — unwrap an element (closed under PV, Theorem 2),
* :class:`InsertText` — create a new text node (Proposition 3's case),
* :class:`UpdateText` — change an existing text node (always PV-safe),
* :class:`DeleteText` — remove a text node (a content deletion, PV-safe).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

__all__ = [
    "NodePath",
    "InsertMarkup",
    "DeleteMarkup",
    "InsertText",
    "UpdateText",
    "DeleteText",
    "EditOperation",
]

#: Address of a node: child indices from the root element.
NodePath = tuple[int, ...]


@dataclass(frozen=True)
class InsertMarkup:
    """Wrap children ``[start:end)`` of the element at *parent* in ``<name>``."""

    parent: NodePath
    start: int
    end: int
    name: str


@dataclass(frozen=True)
class DeleteMarkup:
    """Unwrap the element at *target*, splicing its children into its parent."""

    target: NodePath


@dataclass(frozen=True)
class InsertText:
    """Insert a new text node at *index* under the element at *parent*."""

    parent: NodePath
    index: int
    text: str


@dataclass(frozen=True)
class UpdateText:
    """Replace the content of the text node at *target* with *text*."""

    target: NodePath
    text: str


@dataclass(frozen=True)
class DeleteText:
    """Remove the text node at *target*."""

    target: NodePath


EditOperation = Union[InsertMarkup, DeleteMarkup, InsertText, UpdateText, DeleteText]
