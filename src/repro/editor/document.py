"""Address resolution and operation application over the DOM."""

from __future__ import annotations

from repro.editor.operations import (
    DeleteMarkup,
    DeleteText,
    EditOperation,
    InsertMarkup,
    InsertText,
    NodePath,
    UpdateText,
)
from repro.errors import XmlStructureError
from repro.xmlmodel.tree import XmlDocument, XmlElement, XmlNode, XmlText

__all__ = ["resolve", "resolve_element", "resolve_text", "apply_operation", "invert"]


def resolve(document: XmlDocument, path: NodePath) -> XmlNode:
    """Return the node addressed by *path* (empty path = root element)."""
    node: XmlNode = document.root
    for depth, index in enumerate(path):
        if not isinstance(node, XmlElement):
            raise XmlStructureError(
                f"path {path} descends through a text node at depth {depth}"
            )
        if not 0 <= index < len(node.children):
            raise XmlStructureError(
                f"path {path} index {index} out of range at depth {depth}"
            )
        node = node.children[index]
    return node


def resolve_element(document: XmlDocument, path: NodePath) -> XmlElement:
    node = resolve(document, path)
    if not isinstance(node, XmlElement):
        raise XmlStructureError(f"path {path} does not address an element")
    return node


def resolve_text(document: XmlDocument, path: NodePath) -> XmlText:
    node = resolve(document, path)
    if not isinstance(node, XmlText):
        raise XmlStructureError(f"path {path} does not address a text node")
    return node


def apply_operation(document: XmlDocument, operation: EditOperation) -> None:
    """Apply *operation* to *document* in place (no validity checking)."""
    if isinstance(operation, InsertMarkup):
        parent = resolve_element(document, operation.parent)
        parent.wrap_children(operation.start, operation.end, operation.name)
    elif isinstance(operation, DeleteMarkup):
        if not operation.target:
            raise XmlStructureError("cannot delete the root element's markup")
        target = resolve_element(document, operation.target)
        assert target.parent is not None
        target.parent.unwrap_child(target)
    elif isinstance(operation, InsertText):
        parent = resolve_element(document, operation.parent)
        parent.insert(operation.index, XmlText(operation.text))
    elif isinstance(operation, UpdateText):
        resolve_text(document, operation.target).text = operation.text
    elif isinstance(operation, DeleteText):
        text = resolve_text(document, operation.target)
        assert text.parent is not None
        text.parent.remove(text)
    else:  # pragma: no cover - exhaustive over EditOperation
        raise TypeError(f"unknown operation {operation!r}")


def invert(document: XmlDocument, operation: EditOperation) -> EditOperation:
    """Return the inverse of *operation* against the *current* document state.

    Must be computed **before** applying the operation; applying the
    operation and then its inverse restores the original tree.  Used by the
    session's undo stack.
    """
    if isinstance(operation, InsertMarkup):
        # The wrapper will sit at child index `start` of the parent.
        return DeleteMarkup(target=operation.parent + (operation.start,))
    if isinstance(operation, DeleteMarkup):
        target = resolve_element(document, operation.target)
        parent_path = operation.target[:-1]
        index = operation.target[-1]
        return InsertMarkup(
            parent=parent_path,
            start=index,
            end=index + len(target.children),
            name=target.name,
        )
    if isinstance(operation, InsertText):
        return DeleteText(target=operation.parent + (operation.index,))
    if isinstance(operation, UpdateText):
        current = resolve_text(document, operation.target)
        return UpdateText(target=operation.target, text=current.text)
    if isinstance(operation, DeleteText):
        current = resolve_text(document, operation.target)
        parent_path = operation.target[:-1]
        return InsertText(
            parent=parent_path, index=operation.target[-1], text=current.text
        )
    raise TypeError(f"unknown operation {operation!r}")  # pragma: no cover
